"""Command-line interface.

Subcommands::

    repro-usefulness synth --out-dir data/          # corpora + query log
    repro-usefulness represent --collection data/D1.jsonl.gz --out D1.rep.json
    repro-usefulness estimate --collection ... --query "terms ..." --threshold 0.2
    repro-usefulness evaluate --database D1 --queries 2000
    repro-usefulness eval --config columnar --out-dir results
    repro-usefulness fleet --groups 16 --workers 8 --timeout 2.0
    repro-usefulness stats --format prometheus
    repro-usefulness scalability
    repro-usefulness serve engine --collection data/D1.jsonl.gz --port 8751
    repro-usefulness serve gateway --engines http://127.0.0.1:8751
    repro-usefulness serve shard --collections data/D1.jsonl.gz --shard-index 0
    repro-usefulness serve coordinator --shards 4 --collections data/*.jsonl.gz

Every command prints plain text to stdout; all randomness is seeded.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core import get_estimator, true_usefulness
from repro.corpus import (
    Query,
    analyze_collection,
    load_collection,
    load_trec_collection,
    save_collection,
    save_queries,
)
from repro.corpus.synth import NewsgroupModel, QueryLogModel, build_paper_databases
from repro.engine import SearchEngine
from repro.evaluation import (
    MethodSpec,
    format_error_table,
    format_match_table,
    format_sizing_table,
    run_usefulness_experiment,
)
from repro.metasearch import MetasearchBroker, allocate_documents, threshold_for_k
from repro.representatives import (
    DatabaseRepresentative,
    PAPER_COLLECTION_STATS,
    build_representative,
    sizing_for_collection,
)
from repro.version import package_version

__all__ = ["main", "build_parser"]


def _cmd_synth(args: argparse.Namespace) -> int:
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    model = NewsgroupModel(seed=args.seed)
    d1, d2, d3 = build_paper_databases(model)
    for collection in (d1, d2, d3):
        path = out_dir / f"{collection.name}.jsonl.gz"
        save_collection(collection, path)
        print(f"wrote {path} ({collection.n_documents} docs, {collection.n_terms} terms)")
    queries = QueryLogModel(model, seed=args.query_seed).generate(args.n_queries)
    qpath = out_dir / "queries.jsonl.gz"
    save_queries(queries, qpath)
    print(f"wrote {qpath} ({len(queries)} queries)")
    return 0


def _cmd_represent(args: argparse.Namespace) -> int:
    collection = load_collection(args.collection)
    engine = SearchEngine(collection)
    representative = build_representative(engine)
    representative.save(args.out)
    print(
        f"wrote {args.out} ({representative.n_terms} terms, "
        f"{representative.n_documents} docs)"
    )
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    collection = load_collection(args.collection)
    engine = SearchEngine(collection)
    if args.representative:
        representative = DatabaseRepresentative.load(args.representative)
    else:
        representative = build_representative(engine)
    query = Query.from_terms(args.query.split())
    estimator = get_estimator(args.method)
    estimate = estimator.estimate(query, representative, args.threshold)
    truth = true_usefulness(engine, query, args.threshold)
    print(f"database : {collection.name} ({collection.n_documents} docs)")
    print(f"query    : {' '.join(query.terms)}  (threshold {args.threshold})")
    print(f"method   : {estimator.label}")
    print(f"estimated: NoDoc={estimate.nodoc:.2f}  AvgSim={estimate.avgsim:.4f}")
    print(f"true     : NoDoc={truth.nodoc:.0f}  AvgSim={truth.avgsim:.4f}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    model = NewsgroupModel(seed=args.seed)
    d1, d2, d3 = build_paper_databases(model)
    by_name = {"D1": d1, "D2": d2, "D3": d3}
    collection = by_name[args.database]
    engine = SearchEngine(collection)
    representative = build_representative(engine)
    queries = QueryLogModel(model, seed=args.query_seed).generate(args.queries)
    methods = [
        MethodSpec(name, get_estimator(name), representative)
        for name in args.methods
    ]
    result = run_usefulness_experiment(engine, queries, methods)
    print(format_match_table(result))
    print()
    print(format_error_table(result))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    collection = load_collection(args.collection)
    stats = analyze_collection(collection)
    print(f"collection           : {collection.name}")
    print(f"documents            : {stats.n_documents}")
    print(f"distinct terms       : {stats.n_terms}")
    print(f"tokens               : {stats.n_tokens}")
    print(f"mean / median length : {stats.mean_doc_length:.1f} / "
          f"{stats.median_doc_length:.1f}")
    print(f"Zipf exponent (head) : {stats.zipf_exponent:.2f} "
          f"(R^2 {stats.zipf_r_squared:.3f})")
    print(f"Heaps beta           : {stats.heaps_beta:.2f}")
    print(f"df Gini coefficient  : {stats.df_gini:.2f}")
    sizing = sizing_for_collection(collection)
    print(f"representative       : {sizing.representative_pages:.1f} pages "
          f"({sizing.percent:.2f}% of collection; "
          f"{sizing.quantized_percent:.2f}% one-byte)")
    return 0


def _cmd_allocate(args: argparse.Namespace) -> int:
    representatives = {}
    for path in args.representatives:
        representative = DatabaseRepresentative.load(path)
        representatives[representative.name] = representative
    query = Query.from_terms(args.query.split())
    threshold = threshold_for_k(query, representatives, args.k)
    quotas = allocate_documents(query, representatives, args.k)
    print(f"query    : {' '.join(query.terms)}")
    print(f"desired  : {args.k} documents")
    print(f"threshold: {threshold:.4f}")
    for name in sorted(quotas):
        print(f"  {name}: {quotas[name]}")
    return 0


def _cmd_import_trec(args: argparse.Namespace) -> int:
    collection = load_trec_collection(
        args.files, name=args.name, limit=args.limit
    )
    save_collection(collection, args.out)
    print(
        f"wrote {args.out} ({collection.n_documents} docs, "
        f"{collection.n_terms} terms)"
    )
    return 0


class _InjectedFault:
    """Demo-only engine wrapper adding latency (or a hang) to ``search``;
    everything else delegates, so registration and the oracle still work."""

    def __init__(self, inner: SearchEngine, delay: float):
        self.inner = inner
        self.delay = delay

    def __getattr__(self, attr):
        return getattr(self.inner, attr)

    def search(self, query, threshold=0.0):
        import time

        time.sleep(self.delay)
        return self.inner.search(query, threshold)


def _synth_model(scale: str, seed: int) -> NewsgroupModel:
    """The synthetic corpus behind the fleet/stats demos: a quick small
    variant or the paper's full newsgroup sizing."""
    if scale == "small":
        return NewsgroupModel(
            vocab_size=4000,
            topic_size=120,
            topic_band=(50, 1500),
            mean_length=80,
            seed=seed,
            group_sizes=[60, 50, 40, 30, 25, 20, 15, 12, 10, 8] * 6,
        )
    return NewsgroupModel(seed=seed)


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Run a query log through a full broker fleet with the concurrency,
    timeout, retry, and caching knobs — the production dispatch demo."""
    import time

    if args.groups < 1:
        print(f"error: --groups must be >= 1, got {args.groups}", file=sys.stderr)
        return 2
    if args.queries < 1:
        print(f"error: --queries must be >= 1, got {args.queries}", file=sys.stderr)
        return 2
    model = _synth_model(args.scale, args.seed)
    n_groups = min(args.groups, model.n_groups)
    try:
        broker = MetasearchBroker(
            workers=args.workers,
            timeout=args.timeout,
            retries=args.retries,
            cache_size=args.cache_size,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for group in range(n_groups):
        engine = SearchEngine(model.generate_group(group))
        if group < args.hang_engines:
            slow = _InjectedFault(engine, delay=args.hang_seconds)
            broker.register(slow, representative=build_representative(engine))
        else:
            broker.register(engine)
    queries = QueryLogModel(model, seed=args.query_seed).generate(args.queries)

    invoked = hits = 0
    failures: dict = {}
    start = time.perf_counter()
    for query in queries:
        response = broker.search(query, args.threshold)
        invoked += len(response.invoked)
        hits += len(response.hits)
        for failure in response.failures:
            failures[failure.kind] = failures.get(failure.kind, 0) + 1
    elapsed = time.perf_counter() - start

    broadcast = len(broker) * len(queries)
    print(f"fleet    : {len(broker)} engines, {len(queries)} queries, "
          f"threshold {args.threshold:.2f}")
    print(f"dispatch : workers={args.workers} timeout={args.timeout} "
          f"retries={args.retries} cache_size={args.cache_size}")
    print(f"elapsed  : {elapsed:.2f}s total, "
          f"{1000.0 * elapsed / max(1, len(queries)):.1f}ms/query")
    print(f"invoked  : {invoked} engine calls "
          f"({invoked / broadcast:.1%} of broadcast)")
    print(f"hits     : {hits} merged hits")
    failure_text = ", ".join(
        f"{count} {kind}" for kind, count in sorted(failures.items())
    )
    print(f"failures : {failure_text or 'none'}")
    if broker.cache is not None:
        print(f"cache    : {broker.cache.hits + broker.cache.misses} lookups, "
              f"{broker.cache.hit_rate:.1%} hit rate, "
              f"{len(broker.cache)} resident")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """Run a seeded workload through a fully instrumented broker and export
    the collected metrics as JSON or Prometheus text format."""
    from repro.obs import MetricsRegistry, registry_to_json, registry_to_prometheus

    if args.groups < 1:
        print(f"error: --groups must be >= 1, got {args.groups}", file=sys.stderr)
        return 2
    if args.queries < 1:
        print(f"error: --queries must be >= 1, got {args.queries}", file=sys.stderr)
        return 2
    model = _synth_model("small", args.seed)
    registry = MetricsRegistry()
    try:
        broker = MetasearchBroker(
            workers=args.workers,
            timeout=args.timeout,
            retries=args.retries,
            cache_size=args.cache_size,
            registry=registry,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for group in range(min(args.groups, model.n_groups)):
        broker.register(SearchEngine(model.generate_group(group)))
    queries = QueryLogModel(model, seed=args.query_seed).generate(args.queries)
    response = None
    for query in queries:
        response = broker.search(query, args.threshold)
    if args.show_trace and response is not None:
        # The last query's per-stage trace; stderr keeps stdout parseable.
        print(response.trace.format(), file=sys.stderr)
    if args.format == "json":
        text = registry_to_json(registry)
    else:
        text = registry_to_prometheus(registry)
    if args.out:
        Path(args.out).write_text(text + "\n", encoding="utf-8")
        print(f"wrote {args.out} ({len(registry)} series)")
    else:
        print(text)
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    """Run a query log through the batched estimation/search pipeline and
    report its amortization — optionally checking it against the serial
    per-query path, which must agree exactly."""
    import time

    if args.groups < 1:
        print(f"error: --groups must be >= 1, got {args.groups}", file=sys.stderr)
        return 2
    if args.queries < 1:
        print(f"error: --queries must be >= 1, got {args.queries}", file=sys.stderr)
        return 2
    model = _synth_model(args.scale, args.seed)
    n_groups = min(args.groups, model.n_groups)

    def make_broker() -> MetasearchBroker:
        broker = MetasearchBroker(
            workers=args.workers,
            cache_size=args.cache_size,
            polycache_size=args.polycache_size,
        )
        for group in range(n_groups):
            broker.register(SearchEngine(model.generate_group(group)))
        return broker

    try:
        broker = make_broker()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    queries = QueryLogModel(model, seed=args.query_seed).generate(args.queries)

    start = time.perf_counter()
    if args.mode == "estimate":
        rows = broker.estimate_batch(queries, args.threshold)
        invoked = hits = None
    else:
        responses = broker.search_batch(queries, args.threshold)
        rows = [response.estimates for response in responses]
        invoked = sum(len(r.invoked) for r in responses)
        hits = sum(len(r.hits) for r in responses)
    batch_elapsed = time.perf_counter() - start

    print(f"batch    : {len(broker)} engines, {len(queries)} queries, "
          f"threshold {args.threshold:.2f}, mode {args.mode}")
    print(f"elapsed  : {batch_elapsed:.2f}s total, "
          f"{1000.0 * batch_elapsed / len(queries):.1f}ms/query")
    if invoked is not None:
        print(f"invoked  : {invoked} engine calls, {hits} merged hits")
    if broker.cache is not None:
        print(f"cache    : {broker.cache.hits + broker.cache.misses} lookups, "
              f"{broker.cache.hit_rate:.1%} hit rate, "
              f"{len(broker.cache)} resident")
    if broker.polycache is not None:
        pc = broker.polycache
        print(f"polycache: {pc.hits + pc.misses} lookups, "
              f"{pc.hit_rate:.1%} hit rate, {len(pc)} resident")

    if args.compare_serial:
        serial_broker = make_broker()
        start = time.perf_counter()
        if args.mode == "estimate":
            serial_rows = [
                serial_broker.estimate_all(query, args.threshold)
                for query in queries
            ]
        else:
            serial_rows = [
                serial_broker.search(query, args.threshold).estimates
                for query in queries
            ]
        serial_elapsed = time.perf_counter() - start
        speedup = serial_elapsed / batch_elapsed if batch_elapsed > 0 else float("inf")
        print(f"serial   : {serial_elapsed:.2f}s total ({speedup:.2f}x speedup)")
        if serial_rows == rows:
            print("equality : batch == serial (exact)")
        else:
            print("equality : MISMATCH — batch differs from serial", file=sys.stderr)
            return 1
    return 0


def _load_engine(args: argparse.Namespace) -> SearchEngine:
    """An engine from either artifact: a JSONL collection or a saved index."""
    if args.index:
        from repro.index.store import load_index

        return SearchEngine.from_index(load_index(args.index))
    return SearchEngine(load_collection(args.collection))


def _serve(server, args: argparse.Namespace) -> int:
    """Shared serve loop: announce the URL, run until drained, flush."""
    # flush so a parent process (test harness, CI) can read the bound
    # port before the first request arrives.
    print(f"serving {server.app.role} at {server.url}", flush=True)
    completed = server.run(drain_timeout=args.drain_timeout)
    if args.metrics_out and server.final_metrics is not None:
        Path(args.metrics_out).write_text(
            server.final_metrics, encoding="utf-8"
        )
        print(f"wrote final metrics to {args.metrics_out}")
    print(f"drained ({'complete' if completed else 'timed out'})")
    return 0 if completed else 1


def _cmd_serve_engine(args: argparse.Namespace) -> int:
    """Serve one search engine over HTTP from a saved artifact."""
    from repro.serving import EngineApp, LiveEngineApp, ServingServer

    if args.live:
        if not args.collection:
            print(
                "error: --live needs --collection (a live corpus mutates; "
                "a frozen .npz index cannot)",
                file=sys.stderr,
            )
            return 2
        from repro.corpus.document import Document
        from repro.fleet import LiveEngineServer

        collection = load_collection(args.collection)
        documents = [
            Document(
                doc_id=collection.doc_id(i), terms=collection.terms_of(i)
            )
            for i in range(len(collection))
        ]
        live = LiveEngineServer(collection.name, documents)
        app = LiveEngineApp(
            live,
            registry=_serving_registry(),
            default_deadline=args.default_deadline,
        )
        server = ServingServer(app, host=args.host, port=args.port)
        print(
            f"live engine {live.name!r}: {live.n_documents} documents, "
            f"version {live.version}",
            flush=True,
        )
        return _serve(server, args)
    engine = _load_engine(args)
    app = EngineApp(
        engine,
        registry=_serving_registry(),
        default_deadline=args.default_deadline,
    )
    server = ServingServer(app, host=args.host, port=args.port)
    print(
        f"engine {engine.name!r}: {engine.n_documents} documents",
        flush=True,
    )
    return _serve(server, args)


def _cmd_serve_gateway(args: argparse.Namespace) -> int:
    """Serve a metasearch broker over remote and/or local engines."""
    from repro.serving import (
        AsyncServingServer,
        GatewayApp,
        RemoteEngine,
        ServingServer,
    )

    if not args.engines and not args.collections:
        print(
            "error: give at least one --engines URL or --collections path",
            file=sys.stderr,
        )
        return 2
    registry = _serving_registry()
    try:
        broker = MetasearchBroker(
            workers=args.workers,
            timeout=args.timeout,
            retries=args.retries,
            cache_size=args.cache_size,
            registry=registry,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for url in args.engines or []:
        remote = RemoteEngine(url, timeout=args.engine_timeout)
        snapshot = remote.snapshot_representative(quantize=args.quantize)
        broker.register(remote, representative=snapshot.representative)
        print(
            f"registered remote engine {remote.name!r} at {url} "
            f"(version {snapshot.version})",
            flush=True,
        )
    for path in args.collections or []:
        engine = SearchEngine(load_collection(path))
        broker.register(engine)
        print(f"registered local engine {engine.name!r} from {path}", flush=True)
    app = GatewayApp(
        broker,
        max_active=args.max_active,
        max_queued=args.max_queued,
        max_queue_wait=args.max_queue_wait,
        retry_after=args.retry_after,
        coalesce_window=args.coalesce_window_ms / 1000.0,
        coalesce_max_batch=args.coalesce_max_batch,
        registry=registry,
        default_deadline=args.default_deadline,
    )
    if args.async_io:
        server = AsyncServingServer(app, host=args.host, port=args.port)
    else:
        server = ServingServer(app, host=args.host, port=args.port)
    return _serve(server, args)


def _serving_registry():
    from repro.obs import MetricsRegistry

    return MetricsRegistry()


def _cmd_serve_shard(args: argparse.Namespace) -> int:
    """Serve one shard of a partitioned fleet: a columnar broker over the
    engines assigned to this shard, behind the shard scatter endpoints."""
    from repro.serving import ServingServer, ShardApp

    registry = _serving_registry()
    fleet = None
    if args.slice:
        from repro.representatives.columnar import FleetRepresentativeStore

        fleet = FleetRepresentativeStore.load_npz(args.slice)
        print(
            f"loaded slice {args.slice} "
            f"({len(fleet)} representatives)",
            flush=True,
        )
    try:
        broker = MetasearchBroker(
            workers=args.workers,
            timeout=args.timeout,
            retries=args.retries,
            cache_size=args.cache_size,
            columnar=True,
            fleet=fleet,
            registry=registry,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for path in args.collections or []:
        engine = SearchEngine(load_collection(path))
        broker.register(engine)
        print(
            f"registered local engine {engine.name!r} from {path}", flush=True
        )
    if not len(broker):
        print("error: shard has no engines (give --collections)", file=sys.stderr)
        return 2
    app = ShardApp(
        broker,
        shard_index=args.shard_index,
        registry=registry,
        default_deadline=args.default_deadline,
    )
    server = ServingServer(app, host=args.host, port=args.port)
    return _serve(server, args)


def _spawn_shards(args: argparse.Namespace) -> tuple:
    """Launch ``--shards`` shard worker subprocesses, each owning a
    round-robin slice of ``--collections``; returns (processes, urls)."""
    import re
    import subprocess
    import time

    from repro.representatives import partition_round_robin

    slices = [
        paths
        for paths in partition_round_robin(args.collections, args.shards)
        if paths
    ]
    processes = []
    for index, paths in enumerate(slices):
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "shard",
            "--shard-index",
            str(index),
            "--collections",
            *paths,
        ]
        processes.append(
            subprocess.Popen(
                command,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
        )
    urls = []
    for index, proc in enumerate(processes):
        url = None
        deadline = time.time() + 60
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            match = re.search(r"serving shard at (http://\S+)", line)
            if match:
                url = match.group(1)
                break
        if url is None:
            raise RuntimeError(f"shard {index} did not announce its URL")
        print(f"shard {index} at {url}", flush=True)
        urls.append(url)
    return processes, urls


def _cmd_serve_coordinator(args: argparse.Namespace) -> int:
    """Serve the scatter-gather coordinator over shard workers — spawned
    here (``--shards N`` partitioning ``--collections``) or already
    running (``--shard-urls``)."""
    from repro.serving import (
        AsyncServingServer,
        CoordinatorApp,
        RemoteServingError,
        ServingServer,
        ShardedFleet,
    )

    if bool(args.shards) == bool(args.shard_urls):
        print(
            "error: give exactly one of --shards N (spawn workers from "
            "--collections) or --shard-urls (attach to running workers)",
            file=sys.stderr,
        )
        return 2
    children = []
    try:
        if args.shards:
            if not args.collections:
                print(
                    "error: --shards needs --collections to partition",
                    file=sys.stderr,
                )
                return 2
            try:
                children, shard_urls = _spawn_shards(args)
            except (OSError, RuntimeError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        else:
            shard_urls = list(args.shard_urls)
        registry = _serving_registry()
        fleet = ShardedFleet(
            shard_urls,
            timeout=args.timeout,
            retries=args.retries,
            shard_timeout=args.shard_timeout,
            registry=registry,
        )
        try:
            fleet.attach(timeout=args.attach_timeout)
        except (RemoteServingError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"attached {fleet.n_shards} shard(s), "
            f"{len(fleet)} engines: {', '.join(fleet.engine_names)}",
            flush=True,
        )
        app = CoordinatorApp(
            fleet,
            max_active=args.max_active,
            max_queued=args.max_queued,
            max_queue_wait=args.max_queue_wait,
            retry_after=args.retry_after,
            coalesce_window=args.coalesce_window_ms / 1000.0,
            coalesce_max_batch=args.coalesce_max_batch,
            registry=registry,
            default_deadline=args.default_deadline,
        )
        if args.sync:
            server = ServingServer(app, host=args.host, port=args.port)
        else:
            server = AsyncServingServer(app, host=args.host, port=args.port)
        return _serve(server, args)
    finally:
        for proc in children:
            proc.terminate()
        for proc in children:
            try:
                proc.wait(timeout=5)
            except Exception:
                proc.kill()


def _cmd_convert_rep(args: argparse.Namespace) -> int:
    """Convert a representative between JSON and the columnar ``.npz`` form."""
    from pathlib import Path

    from repro.representatives.columnar import ColumnarRepresentative

    src = Path(args.input)
    dst = Path(args.output)
    to_npz = dst.suffix == ".npz"
    from_npz = src.suffix == ".npz"
    if to_npz == from_npz:
        print(
            "convert-rep: exactly one of input/output must end in .npz "
            f"(got {src.name!r} -> {dst.name!r})"
        )
        return 2
    if to_npz:
        representative = DatabaseRepresentative.load(src)
        ColumnarRepresentative.from_representative(representative).save_npz(dst)
    else:
        representative = ColumnarRepresentative.load_npz(src).to_representative()
        representative.save(dst)
    print(
        f"{src} ({src.stat().st_size} bytes) -> {dst} ({dst.stat().st_size} "
        f"bytes): {representative.name!r}, {len(representative)} terms, "
        f"{representative.n_documents} documents"
    )
    return 0


def _load_any_representative(path: "Path"):
    """A representative from JSON or the columnar ``.npz`` form, by suffix."""
    from repro.representatives.columnar import ColumnarRepresentative

    if path.suffix == ".npz":
        return ColumnarRepresentative.load_npz(path).to_representative()
    return DatabaseRepresentative.load(path)


def _cmd_rep_diff(args: argparse.Namespace) -> int:
    """Diff two representative snapshots into the equivalent delta."""
    from pathlib import Path

    from repro.fleet.delta import canonicalize, diff_representatives

    old = canonicalize(_load_any_representative(Path(args.old)))
    new = canonicalize(_load_any_representative(Path(args.new)))
    if old.name != new.name:
        print(
            f"rep-diff: representatives name different databases "
            f"({old.name!r} vs {new.name!r})",
            file=sys.stderr,
        )
        return 2
    delta = diff_representatives(
        old, new, from_version=args.from_version, to_version=args.to_version
    )
    print(
        f"{args.old} -> {args.new}: {delta.n_sets} set, {delta.n_dels} del, "
        f"n_documents {delta.from_n_documents} -> {delta.n_documents}, "
        f"{delta.nbytes} wire bytes"
    )
    shown = 0
    for record in delta.records:
        if shown >= args.limit:
            remaining = len(delta.records) - shown
            print(f"  ... {remaining} more records (raise --limit)")
            break
        if record.op == "del":
            before = old.get(record.term)
            print(f"  del {record.term!r} (was p={before.probability:.6g})")
        else:
            before = old.get(record.term)
            stats = record.stats
            was = (
                f"was p={before.probability:.6g} w={before.mean:.6g}"
                if before is not None
                else "new term"
            )
            print(
                f"  set {record.term!r} p={stats.probability:.6g} "
                f"w={stats.mean:.6g} ({was})"
            )
        shown += 1
    if delta.is_empty:
        print("  (no per-term changes)")
    if args.out:
        Path(args.out).write_bytes(delta.encode())
        print(f"wrote canonical delta to {args.out} ({delta.nbytes} bytes)")
    return 0


_EVAL_ESTIMATORS = [
    "basic",
    "binary-independence",
    "gloss-hc",
    "gloss-disjoint",
    "subrange",
]


def _eval_backends(args, estimator_names, engines, representatives, stack):
    """Backends for ``repro eval``, one per estimator, behind the chosen
    configuration; resources (sharded topologies) register on ``stack``."""
    from repro.representatives import partition_round_robin

    backends = {}
    if args.config in ("dict", "columnar"):
        for name in estimator_names:
            broker = MetasearchBroker(
                estimator=get_estimator(name),
                columnar=(args.config == "columnar"),
            )
            for engine in engines:
                broker.register(engine, representative=representatives[engine.name])
            backends[name] = broker
        return backends

    if args.config == "delta":
        # Live-fleet path: each engine starts registered from a *partial*
        # corpus snapshot, then the broker catches up to the full corpus
        # through versioned deltas (including a remove-then-re-add to
        # exercise document removal) — the estimates the harness scores
        # come from delta-applied representatives, not fresh builds.
        from repro.corpus import Document
        from repro.fleet import LiveEngineServer

        for name in estimator_names:
            broker = MetasearchBroker(estimator=get_estimator(name))
            for engine in engines:
                collection = engine.collection
                documents = [
                    Document(
                        doc_id=collection.doc_id(i),
                        terms=collection.terms_of(i),
                    )
                    for i in range(len(collection))
                ]
                held_back = max(1, len(documents) // 4)
                live = LiveEngineServer(
                    engine.name, documents[: len(documents) - held_back]
                )
                snapshot = live.snapshot()
                broker.register(
                    engine,
                    representative=snapshot.representative,
                    version=snapshot.version,
                )
                if live.n_documents:
                    victim = documents[0]
                    live.remove_documents([victim.doc_id])
                    live.add_documents([victim])
                live.add_documents(documents[len(documents) - held_back :])
                broker.apply_representative_delta(
                    live.delta_since(snapshot.version)
                )
            backends[name] = broker
        return backends

    # Sharded: per estimator, a real scatter-gather topology — shard
    # brokers behind in-process HTTP servers, a ShardedFleet coordinator
    # in front.  Estimates travel the same wire CI's subprocess topology
    # uses; only the process boundary is elided.
    from repro.serving import ServingServer, ShardApp, ShardedFleet

    for name in estimator_names:
        urls = []
        for index, engine_slice in enumerate(
            s for s in partition_round_robin(engines, args.shards) if s
        ):
            broker = MetasearchBroker(
                estimator=get_estimator(name), columnar=True
            )
            for engine in engine_slice:
                broker.register(engine, representative=representatives[engine.name])
            server = ServingServer(ShardApp(broker, shard_index=index))
            server.start_background()
            stack.callback(server.drain, 10.0)
            urls.append(server.url)
        fleet = ShardedFleet(urls).attach(timeout=30.0)
        stack.callback(fleet.close)
        backends[name] = fleet
    return backends


def _cmd_eval(args: argparse.Namespace) -> int:
    """Score engine selection as a ranking task over the golden strata
    and emit the timestamped markdown + JSON report."""
    import contextlib

    from repro.evaluation.harness import (
        DEFAULT_N_ENGINES,
        DEFAULT_SEED,
        build_eval_fleet,
        check_floors,
        generate_golden_strata,
        golden_manifest,
        load_floors,
        load_golden_strata,
        run_evaluation,
        write_golden_strata,
        write_report,
    )
    from repro.evaluation.harness.report import utc_timestamp
    from repro.representatives import build_representative

    golden_dir = Path(args.golden_dir) if args.golden_dir else None
    n_engines = args.engines if args.engines is not None else DEFAULT_N_ENGINES

    if args.write_golden:
        if golden_dir is None:
            print("error: --write-golden needs --golden-dir", file=sys.stderr)
            return 2
        seed = args.seed if args.seed is not None else DEFAULT_SEED
        written = write_golden_strata(golden_dir, seed=seed, n_engines=n_engines)
        for name, path in sorted(written.items()):
            print(f"wrote {path} ({name})")
        return 0

    committed = golden_dir is not None and (golden_dir / "manifest.json").exists()
    if committed:
        manifest = golden_manifest(golden_dir)
        seed = int(manifest["seed"])
        n_engines = int(manifest["n_engines"])
        if args.seed is not None and args.seed != seed:
            # An explicit seed overrides the committed sets: regenerate in
            # memory so the whole run (fleet + queries) derives from it.
            seed, committed = args.seed, False
            n_engines = args.engines if args.engines is not None else n_engines
    else:
        seed = args.seed if args.seed is not None else DEFAULT_SEED

    if committed:
        strata = load_golden_strata(golden_dir)
        source = str(golden_dir)
    else:
        strata = generate_golden_strata(seed, n_engines)
        source = f"generated (seed {seed})"

    collections = build_eval_fleet(seed, n_engines)
    engines = [SearchEngine(c) for c in collections]
    representatives = {
        engine.name: build_representative(engine) for engine in engines
    }
    print(
        f"eval     : config {args.config}, {len(engines)} engines, "
        f"{len(strata)} strata ({sum(s.n_queries for s in strata.values())} "
        f"queries), seed {seed}"
    )
    print(f"golden   : {source}")
    with contextlib.ExitStack() as stack:
        try:
            backends = _eval_backends(
                args, args.estimators, engines, representatives, stack
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        result = run_evaluation(
            backends,
            engines,
            strata,
            config=args.config,
            seed=seed,
            generated_at=utc_timestamp(),
        )
    paths = write_report(result, args.out_dir)
    print(f"report   : {paths['md']}")
    print(f"report   : {paths['json']}")
    for name in sorted(strata):
        fired = [
            estimator
            for estimator, scores in result.payload["strata"][name][
                "estimators"
            ].items()
            if not scores["tripwires"]["ok"]
        ]
        status = f"TRIPWIRES: {', '.join(fired)}" if fired else "ok"
        print(f"stratum  : {name:<20} {status}")
    if args.check_floors:
        violations = check_floors(result.payload, load_floors(args.check_floors))
        if violations:
            for violation in violations:
                print(f"floor    : VIOLATION {violation}", file=sys.stderr)
            return 1
        print(f"floors   : ok ({args.check_floors})")
    return 0


def _cmd_scalability(args: argparse.Namespace) -> int:
    rows = list(PAPER_COLLECTION_STATS)
    if args.synthetic:
        model = NewsgroupModel(seed=args.seed)
        rows.extend(
            sizing_for_collection(c) for c in build_paper_databases(model)
        )
    print(format_sizing_table(rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-usefulness",
        description="Usefulness estimation for metasearch engine selection "
        "(Meng et al., ICDE 1999 reproduction).",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {package_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synth", help="generate the synthetic D1/D2/D3 + query log")
    p.add_argument("--out-dir", default="data")
    p.add_argument("--seed", type=int, default=1999)
    p.add_argument("--query-seed", type=int, default=42)
    p.add_argument("--n-queries", type=int, default=6234)
    p.set_defaults(func=_cmd_synth)

    p = sub.add_parser("represent", help="build a database representative")
    p.add_argument("--collection", required=True)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_represent)

    p = sub.add_parser("estimate", help="estimate usefulness for one query")
    p.add_argument("--collection", required=True)
    p.add_argument("--representative", default=None)
    p.add_argument("--query", required=True, help="space-separated terms")
    p.add_argument("--threshold", type=float, default=0.2)
    p.add_argument("--method", default="subrange")
    p.set_defaults(func=_cmd_estimate)

    p = sub.add_parser("evaluate", help="run the Section 4 comparison tables")
    p.add_argument("--database", choices=("D1", "D2", "D3"), default="D1")
    p.add_argument("--queries", type=int, default=6234)
    p.add_argument(
        "--methods",
        nargs="+",
        default=["gloss-hc", "prev", "subrange"],
    )
    p.add_argument("--seed", type=int, default=1999)
    p.add_argument("--query-seed", type=int, default=42)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser(
        "convert-rep",
        help="convert a representative between JSON and columnar .npz",
    )
    p.add_argument("input", help="source representative (.json or .npz)")
    p.add_argument(
        "output",
        help="destination; direction follows the .npz extension",
    )
    p.set_defaults(func=_cmd_convert_rep)

    p = sub.add_parser(
        "rep-diff",
        help="diff two representative snapshots into the equivalent delta",
    )
    p.add_argument("old", help="older representative (.json or .npz)")
    p.add_argument("new", help="newer representative (.json or .npz)")
    p.add_argument("--from-version", type=int, default=0,
                   help="version stamp of the older snapshot")
    p.add_argument("--to-version", type=int, default=1,
                   help="version stamp of the newer snapshot")
    p.add_argument("--limit", type=int, default=20,
                   help="per-term records to print before truncating")
    p.add_argument("--out", default=None,
                   help="write the canonical wire-form delta JSON here")
    p.set_defaults(func=_cmd_rep_diff)

    p = sub.add_parser("analyze", help="corpus statistics of a collection")
    p.add_argument("--collection", required=True)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "allocate", help="per-engine retrieval quotas for a desired k"
    )
    p.add_argument("--representatives", nargs="+", required=True,
                   help="representative JSON files, one per engine")
    p.add_argument("--query", required=True, help="space-separated terms")
    p.add_argument("-k", type=int, default=10)
    p.set_defaults(func=_cmd_allocate)

    p = sub.add_parser(
        "import-trec", help="convert TREC SGML files into a collection"
    )
    p.add_argument("files", nargs="+")
    p.add_argument("--name", required=True)
    p.add_argument("--out", required=True)
    p.add_argument("--limit", type=int, default=None)
    p.set_defaults(func=_cmd_import_trec)

    p = sub.add_parser(
        "fleet",
        help="query a synthetic engine fleet through the concurrent broker",
    )
    p.add_argument("--groups", type=int, default=16, help="engines to register")
    p.add_argument("--queries", type=int, default=100)
    p.add_argument("--threshold", type=float, default=0.3)
    p.add_argument("--workers", type=int, default=8,
                   help="concurrent engine calls (1 = serial path)")
    p.add_argument("--timeout", type=float, default=None,
                   help="fan-out deadline in seconds (default: none)")
    p.add_argument("--retries", type=int, default=0,
                   help="extra attempts after an engine error")
    p.add_argument("--cache-size", type=int, default=1024,
                   help="estimate cache capacity (0 disables)")
    p.add_argument("--scale", choices=("small", "paper"), default="small",
                   help="corpus scale: quick demo or the paper's full size")
    p.add_argument("--hang-engines", type=int, default=0,
                   help="fault injection: make the first N engines hang")
    p.add_argument("--hang-seconds", type=float, default=5.0,
                   help="how long an injected hang sleeps")
    p.add_argument("--seed", type=int, default=1999)
    p.add_argument("--query-seed", type=int, default=42)
    p.set_defaults(func=_cmd_fleet)

    p = sub.add_parser(
        "stats",
        help="run an instrumented workload and export query-path metrics",
    )
    p.add_argument("--groups", type=int, default=6, help="engines to register")
    p.add_argument("--queries", type=int, default=25)
    p.add_argument("--threshold", type=float, default=0.3)
    p.add_argument("--workers", type=int, default=4,
                   help="concurrent engine calls (1 = serial path)")
    p.add_argument("--timeout", type=float, default=None,
                   help="fan-out deadline in seconds (requires workers > 1)")
    p.add_argument("--retries", type=int, default=0)
    p.add_argument("--cache-size", type=int, default=1024)
    p.add_argument("--format", choices=("json", "prometheus"), default="json",
                   help="export format for the metrics snapshot")
    p.add_argument("--out", default=None,
                   help="write the export to a file instead of stdout")
    p.add_argument("--show-trace", action="store_true",
                   help="print the last query's per-stage trace to stderr")
    p.add_argument("--seed", type=int, default=1999)
    p.add_argument("--query-seed", type=int, default=42)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "batch",
        help="run a query log through the batched estimation pipeline",
    )
    p.add_argument("--groups", type=int, default=8, help="engines to register")
    p.add_argument("--queries", type=int, default=200)
    p.add_argument("--threshold", type=float, default=0.3)
    p.add_argument("--mode", choices=("estimate", "search"), default="estimate",
                   help="batched estimation only, or the full search pipeline")
    p.add_argument("--workers", type=int, default=1,
                   help="concurrent engine calls (1 = serial dispatch)")
    p.add_argument("--cache-size", type=int, default=1024,
                   help="estimate cache capacity (0 disables)")
    p.add_argument("--polycache-size", type=int, default=4096,
                   help="term-polynomial cache capacity (0 disables)")
    p.add_argument("--compare-serial", action="store_true",
                   help="also run the serial per-query path and verify the "
                        "batch answers match it exactly")
    p.add_argument("--scale", choices=("small", "paper"), default="small",
                   help="corpus scale: quick demo or the paper's full size")
    p.add_argument("--seed", type=int, default=1999)
    p.add_argument("--query-seed", type=int, default=42)
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser(
        "serve", help="serve an engine or the broker gateway over HTTP"
    )
    serve_sub = p.add_subparsers(dest="role", required=True)

    def _common_serve_args(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--host", default="127.0.0.1")
        sp.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = pick a free one; the bound URL "
                             "is printed on startup)")
        sp.add_argument("--default-deadline", type=float, default=None,
                        help="budget in seconds for requests without an "
                             "X-Repro-Deadline header")
        sp.add_argument("--drain-timeout", type=float, default=30.0,
                        help="seconds to wait for in-flight requests on "
                             "SIGTERM/SIGINT")
        sp.add_argument("--metrics-out", default=None,
                        help="write the final metrics flush (Prometheus "
                             "text) here after draining")

    sp = serve_sub.add_parser(
        "engine", help="serve one search engine from a saved artifact"
    )
    source = sp.add_mutually_exclusive_group(required=True)
    source.add_argument("--collection", default=None,
                        help="JSONL collection to index and serve")
    source.add_argument("--index", default=None,
                        help="saved .npz index to serve without re-indexing")
    sp.add_argument("--live", action="store_true",
                    help="serve a mutable live engine: adds POST /mutate and "
                         "GET /representative/delta (needs --collection)")
    _common_serve_args(sp)
    sp.set_defaults(func=_cmd_serve_engine)

    sp = serve_sub.add_parser(
        "gateway", help="serve the metasearch broker over HTTP engines"
    )
    sp.add_argument("--engines", nargs="+", default=None,
                    help="engine server URLs to register")
    sp.add_argument("--collections", nargs="+", default=None,
                    help="JSONL collections served as in-process engines")
    sp.add_argument("--quantize", type=int, default=None,
                    help="fetch remote representatives one-byte quantized "
                         "with this many levels")
    sp.add_argument("--engine-timeout", type=float, default=10.0,
                    help="per-call budget for remote engine requests")
    sp.add_argument("--workers", type=int, default=8,
                    help="concurrent engine calls per search")
    sp.add_argument("--timeout", type=float, default=None,
                    help="broker fan-out deadline (requires workers > 1)")
    sp.add_argument("--retries", type=int, default=0,
                    help="extra attempts after an engine error")
    sp.add_argument("--cache-size", type=int, default=1024,
                    help="estimate cache capacity (0 disables)")
    sp.add_argument("--max-active", type=int, default=8,
                    help="broker requests allowed to run concurrently")
    sp.add_argument("--max-queued", type=int, default=32,
                    help="requests allowed to wait for a slot before "
                         "shedding with 503")
    sp.add_argument("--max-queue-wait", type=float, default=5.0,
                    help="wait cap for queued requests without a deadline")
    sp.add_argument("--retry-after", type=float, default=1.0,
                    help="Retry-After hint on shed responses")
    sp.add_argument("--coalesce-window-ms", type=float, default=0.0,
                    help="coalesce concurrent /estimate and /search "
                         "requests for up to this many milliseconds into "
                         "one broker batch (0 disables; lone requests "
                         "always take the idle fast-path)")
    sp.add_argument("--coalesce-max-batch", type=int, default=64,
                    help="flush a coalescing window at this occupancy")
    sp.add_argument("--async-io", action="store_true",
                    help="serve on the asyncio connection frontend instead "
                         "of a thread per connection")
    _common_serve_args(sp)
    sp.set_defaults(func=_cmd_serve_gateway)

    sp = serve_sub.add_parser(
        "shard", help="serve one shard of a partitioned fleet"
    )
    sp.add_argument("--collections", nargs="+", default=None,
                    help="JSONL collections owned by this shard")
    sp.add_argument("--slice", default=None,
                    help="columnar fleet slice (.npz) holding this shard's "
                         "representatives; engines registered from "
                         "--collections adopt their resident entry")
    sp.add_argument("--shard-index", type=int, default=0,
                    help="this shard's position in the coordinator's list")
    sp.add_argument("--workers", type=int, default=4,
                    help="concurrent engine calls per dispatch entry")
    sp.add_argument("--timeout", type=float, default=None,
                    help="engine fan-out deadline (requires workers > 1)")
    sp.add_argument("--retries", type=int, default=0,
                    help="extra attempts after an engine error")
    sp.add_argument("--cache-size", type=int, default=1024,
                    help="estimate cache capacity (0 disables)")
    _common_serve_args(sp)
    sp.set_defaults(func=_cmd_serve_shard)

    sp = serve_sub.add_parser(
        "coordinator",
        help="serve the scatter-gather coordinator over shard workers",
    )
    sp.add_argument("--shards", type=int, default=None,
                    help="spawn this many shard worker processes, "
                         "partitioning --collections round-robin")
    sp.add_argument("--collections", nargs="+", default=None,
                    help="JSONL collections to partition across spawned "
                         "shards (with --shards)")
    sp.add_argument("--shard-urls", nargs="+", default=None,
                    help="attach to already-running shard workers instead "
                         "of spawning")
    sp.add_argument("--timeout", type=float, default=None,
                    help="scatter deadline per fan-out; a shard missing it "
                         "is treated as dead for that request")
    sp.add_argument("--retries", type=int, default=0,
                    help="extra attempts per shard call")
    sp.add_argument("--shard-timeout", type=float, default=30.0,
                    help="per-request socket budget for shard calls")
    sp.add_argument("--attach-timeout", type=float, default=30.0,
                    help="seconds to wait for shard /healthz at startup")
    sp.add_argument("--max-active", type=int, default=8,
                    help="coordinator requests allowed to run concurrently")
    sp.add_argument("--max-queued", type=int, default=32,
                    help="requests allowed to wait for a slot before "
                         "shedding with 503")
    sp.add_argument("--max-queue-wait", type=float, default=5.0,
                    help="wait cap for queued requests without a deadline")
    sp.add_argument("--retry-after", type=float, default=1.0,
                    help="Retry-After hint on shed responses")
    sp.add_argument("--coalesce-window-ms", type=float, default=0.0,
                    help="coalesce concurrent /estimate and /search "
                         "requests for up to this many milliseconds into "
                         "one broker batch (0 disables; lone requests "
                         "always take the idle fast-path)")
    sp.add_argument("--coalesce-max-batch", type=int, default=64,
                    help="flush a coalescing window at this occupancy")
    sp.add_argument("--sync", action="store_true",
                    help="serve on the threaded server instead of the "
                         "asyncio connection frontend")
    _common_serve_args(sp)
    sp.set_defaults(func=_cmd_serve_coordinator)

    p = sub.add_parser(
        "eval",
        help="score engine selection as a ranking task over golden strata",
    )
    p.add_argument("--config", choices=("dict", "columnar", "sharded", "delta"),
                   default="columnar",
                   help="broker backend under test: per-engine dict "
                        "representatives, the columnar fleet store, a "
                        "sharded scatter-gather topology, or the live-fleet "
                        "delta path (partial registration caught up through "
                        "versioned deltas)")
    p.add_argument("--estimators", nargs="+", default=_EVAL_ESTIMATORS,
                   help="estimators to score (default: the five with a "
                        "vectorized fleet path)")
    p.add_argument("--golden-dir", default="tests/integration/golden/queries",
                   help="directory of committed golden strata (falls back "
                        "to in-memory generation when absent)")
    p.add_argument("--out-dir", default="results",
                   help="where eval_<config>.{md,json} are written")
    p.add_argument("--seed", type=int, default=None,
                   help="master seed for fleet + query generation; "
                        "overrides the committed sets' seed (regenerating "
                        "them in memory) when it differs")
    p.add_argument("--engines", type=int, default=None,
                   help="evaluation fleet width when generating")
    p.add_argument("--shards", type=int, default=2,
                   help="shard count for --config sharded")
    p.add_argument("--write-golden", action="store_true",
                   help="(re)generate the golden strata into --golden-dir "
                        "and exit")
    p.add_argument("--check-floors", default=None,
                   help="floors JSON to gate the report against; exits 1 "
                        "on any violation")
    p.set_defaults(func=_cmd_eval)

    p = sub.add_parser("scalability", help="print the Section 3.2 sizing table")
    p.add_argument("--synthetic", action="store_true",
                   help="append rows for the synthetic D1/D2/D3")
    p.add_argument("--seed", type=int, default=1999)
    p.set_defaults(func=_cmd_scalability)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
