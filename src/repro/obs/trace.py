"""Per-query tracing: named spans over the broker's search pipeline.

Every :meth:`MetasearchBroker.search` produces a :class:`QueryTrace` whose
spans cover the pipeline stages — ``estimate``, ``select``, ``dispatch``
(with one ``dispatch:<engine>`` child per invoked engine), ``merge`` — so a
slow query can be attributed to a stage, and an estimator comparison can be
run on measured numbers rather than ad-hoc prints.

Spans record wall-clock offsets from the trace's creation, so a rendered
trace reads as a timeline.  Tracing has no off switch: it is a handful of
``perf_counter`` calls and list appends per query, which the observability
bench keeps within noise.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["QueryTrace", "Span"]


@dataclass
class Span:
    """One named, timed section of a query's lifecycle.

    Attributes:
        name: Stage name (``"estimate"``, ``"dispatch:space"``, ...).
        start: Seconds from trace creation to span start.
        duration: Span length in seconds.
        metadata: Small stage-specific facts (engine counts, hit counts).
    """

    name: str
    start: float
    duration: float
    metadata: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = {"name": self.name, "start": self.start, "duration": self.duration}
        if self.metadata:
            out["metadata"] = dict(self.metadata)
        return out


class QueryTrace:
    """An append-only list of spans for one brokered query."""

    __slots__ = ("spans", "_origin")

    def __init__(self):
        self.spans: List[Span] = []
        self._origin = time.perf_counter()

    @contextmanager
    def span(self, name: str, **metadata) -> Iterator[Span]:
        """Time a ``with`` block as one span; metadata may be filled inside."""
        start = time.perf_counter()
        record = Span(
            name=name, start=start - self._origin, duration=0.0, metadata=metadata
        )
        try:
            yield record
        finally:
            record.duration = time.perf_counter() - start
            self.spans.append(record)

    def add(self, name: str, duration: float, **metadata) -> Span:
        """Record an externally measured span (e.g. a per-engine latency
        reported by the dispatcher) ending now."""
        now = time.perf_counter() - self._origin
        record = Span(
            name=name,
            start=max(0.0, now - duration),
            duration=duration,
            metadata=metadata,
        )
        self.spans.append(record)
        return record

    def duration_of(self, name: str) -> Optional[float]:
        """Duration of the first span called ``name``; None when absent."""
        for span in self.spans:
            if span.name == name:
                return span.duration
        return None

    def stage_names(self) -> List[str]:
        return [span.name for span in self.spans]

    @property
    def total_seconds(self) -> float:
        """End-to-end wall clock covered so far (latest span end)."""
        return max((s.start + s.duration for s in self.spans), default=0.0)

    def as_dict(self) -> dict:
        return {
            "total_seconds": self.total_seconds,
            "spans": [span.as_dict() for span in self.spans],
        }

    def format(self) -> str:
        """A fixed-width, human-readable timeline of the spans."""
        lines = [f"trace: {self.total_seconds * 1000.0:.2f}ms total"]
        for span in self.spans:
            meta = ""
            if span.metadata:
                meta = "  " + " ".join(
                    f"{k}={v}" for k, v in sorted(span.metadata.items())
                )
            lines.append(
                f"  {span.name:<24} @{span.start * 1000.0:>8.2f}ms "
                f"+{span.duration * 1000.0:>8.2f}ms{meta}"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return (
            f"QueryTrace(spans={len(self.spans)}, "
            f"total={self.total_seconds * 1000.0:.2f}ms)"
        )
