"""Thread-safe metric instruments and their registry.

Three instrument kinds cover the query path:

* :class:`Counter` — monotonically increasing totals (searches, cache hits,
  dispatch retries).
* :class:`Gauge` — a value that can go up and down (resident cache entries).
* :class:`Histogram` — observations bucketed under fixed upper bounds, with
  running count and sum (per-stage latency, expansion term counts, pruned
  probability mass).

A :class:`MetricsRegistry` hands out instruments by ``(name, labels)`` —
asking twice returns the same instrument — and can snapshot every series
for the exporters in :mod:`repro.obs.export`.  The :class:`NullRegistry`
implements the same surface with shared no-op instruments, so the default
query path pays a few attribute lookups per search and nothing else (the
contract ``benchmarks/bench_observability.py`` enforces).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MASS_BUCKETS",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "OCCUPANCY_BUCKETS",
    "SIZE_BUCKETS",
]

#: Seconds-scale buckets for latency histograms (sub-ms to 10 s).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Count-scale buckets for expansion sizes and similar integer magnitudes.
SIZE_BUCKETS: Tuple[float, ...] = (
    1, 4, 16, 64, 256, 1024, 4096, 16384, 65536,
)

#: Batch-occupancy buckets: how many requests/queries shared one batch
#: (coalescing windows, shard estimate batches, scatter fan-outs).
OCCUPANCY_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256,
)

#: Probability-mass buckets for pruned-mass observations.
MASS_BUCKETS: Tuple[float, ...] = (
    1e-12, 1e-9, 1e-6, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0,
)

LabelPairs = Tuple[Tuple[str, str], ...]


def _label_pairs(labels: Optional[Mapping[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount!r}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A value that can move in either direction."""

    kind = "gauge"
    __slots__ = ("name", "labels", "_lock", "_value")

    def __init__(self, name: str, labels: LabelPairs = ()):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """Observations under fixed cumulative buckets plus count and sum.

    Buckets are upper bounds in ascending order; an implicit ``+Inf``
    bucket always exists, so every observation lands somewhere.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        labels: LabelPairs = (),
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(later <= earlier for later, earlier in zip(bounds[1:], bounds)):
            raise ValueError(f"bucket bounds must be strictly ascending: {bounds!r}")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        running = 0
        out: List[Tuple[float, int]] = []
        for bound, count in zip(self.bounds, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def as_dict(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            total, total_sum = self._count, self._sum
        running = 0
        buckets = []
        for bound, count in zip(self.bounds, counts):
            running += count
            buckets.append({"le": bound, "count": running})
        buckets.append({"le": "+Inf", "count": running + counts[-1]})
        return {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "count": total,
            "sum": total_sum,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Creates and owns metric instruments, deduplicated by (name, labels).

    The same name may carry many label sets (one histogram per engine, say)
    but only one instrument kind — requesting a counter under a name already
    used by a gauge is a programming error and raises.
    """

    null = False

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelPairs], object] = {}
        self._kinds: Dict[str, str] = {}

    def _get_or_create(self, name: str, labels, factory, kind: str):
        key = (name, _label_pairs(labels))
        with self._lock:
            known = self._kinds.get(name)
            if known is not None and known != kind:
                raise ValueError(
                    f"metric {name!r} is already a {known}, not a {kind}"
                )
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory(key[1])
                self._metrics[key] = metric
                self._kinds[name] = kind
            return metric

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        return self._get_or_create(
            name, labels, lambda pairs: Counter(name, pairs), "counter"
        )

    def gauge(self, name: str, labels: Optional[Mapping[str, str]] = None) -> Gauge:
        return self._get_or_create(
            name, labels, lambda pairs: Gauge(name, pairs), "gauge"
        )

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = LATENCY_BUCKETS,
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        return self._get_or_create(
            name, labels, lambda pairs: Histogram(name, buckets, pairs), "histogram"
        )

    def snapshot(self) -> List[dict]:
        """Every series as a plain dict, sorted by (name, labels)."""
        with self._lock:
            metrics = list(self._metrics.items())
        metrics.sort(key=lambda item: item[0])
        return [metric.as_dict() for _, metric in metrics]

    def value(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[float]:
        """Current value of a counter/gauge series; None when absent."""
        with self._lock:
            metric = self._metrics.get((name, _label_pairs(labels)))
        return getattr(metric, "value", None) if metric is not None else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry(series={len(self)})"


class _NullCounter:
    kind = "counter"
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    value = 0.0


class _NullGauge:
    kind = "gauge"
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    value = 0.0


class _NullHistogram:
    kind = "histogram"
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    count = 0
    sum = 0.0


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """Do-nothing registry: same surface, shared no-op instruments.

    This is the default everywhere instrumentation is threaded through, so
    uninstrumented deployments never allocate per-call and the query path
    stays within noise of the pre-observability implementation.
    """

    null = True

    def counter(self, name, labels=None) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name, labels=None) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name, buckets=LATENCY_BUCKETS, labels=None) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> List[dict]:
        return []

    def value(self, name, labels=None) -> Optional[float]:
        return None

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullRegistry()"


#: Shared default instance — instrumented classes fall back to this.
NULL_REGISTRY = NullRegistry()
