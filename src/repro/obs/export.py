"""Registry exporters: JSON for tooling, Prometheus text format for scraping.

Both operate on :meth:`MetricsRegistry.snapshot`, so an export never holds
registry locks while serializing and a :class:`NullRegistry` exports an
empty (but valid) document.

The Prometheus rendering follows the text exposition format: metric names
are sanitized to ``[a-zA-Z0-9_]`` and prefixed (default ``repro_``),
counters gain the conventional ``_total`` suffix, and histograms emit the
``_bucket{le=...}`` / ``_sum`` / ``_count`` triplet with cumulative bucket
counts ending at ``le="+Inf"``.
"""

from __future__ import annotations

import json
import re
from typing import List

__all__ = ["registry_to_json", "registry_to_prometheus"]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str, prefix: str) -> str:
    sanitized = _NAME_SANITIZER.sub("_", name)
    return f"{prefix}{sanitized}" if prefix else sanitized


def _prom_labels(labels: dict, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


def registry_to_json(registry, indent: int = 2) -> str:
    """The registry snapshot as a JSON document ``{"metrics": [...]}``."""
    return json.dumps({"metrics": registry.snapshot()}, indent=indent)


def registry_to_prometheus(registry, prefix: str = "repro_") -> str:
    """The registry snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    seen_types = set()
    for metric in registry.snapshot():
        name = _prom_name(metric["name"], prefix)
        kind = metric["kind"]
        labels = metric["labels"]
        base = f"{name}_total" if kind == "counter" else name
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {base} {kind}")
        if kind in ("counter", "gauge"):
            lines.append(f"{base}{_prom_labels(labels)} {_prom_value(metric['value'])}")
        else:  # histogram
            for bucket in metric["buckets"]:
                le = bucket["le"]
                le_text = "+Inf" if le == "+Inf" else _prom_value(le)
                le_label = 'le="' + le_text + '"'
                lines.append(
                    f"{name}_bucket{_prom_labels(labels, le_label)} "
                    f"{bucket['count']}"
                )
            lines.append(f"{name}_sum{_prom_labels(labels)} {_prom_value(metric['sum'])}")
            lines.append(f"{name}_count{_prom_labels(labels)} {metric['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
