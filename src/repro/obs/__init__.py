"""Observability for the query path: metrics, traces, and exporters.

* :mod:`repro.obs.registry` — thread-safe counters, gauges, and fixed-bucket
  histograms behind a :class:`MetricsRegistry`; :class:`NullRegistry` is the
  no-op default that keeps the uninstrumented path free.
* :mod:`repro.obs.trace` — :class:`QueryTrace` span recording for each
  brokered query (estimate → select → dispatch-per-engine → merge).
* :mod:`repro.obs.export` — JSON and Prometheus text-format rendering of a
  registry snapshot (the ``stats`` CLI subcommand's output).
"""

from repro.obs.export import registry_to_json, registry_to_prometheus
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MASS_BUCKETS,
    OCCUPANCY_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    SIZE_BUCKETS,
)
from repro.obs.trace import QueryTrace, Span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MASS_BUCKETS",
    "OCCUPANCY_BUCKETS",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "QueryTrace",
    "SIZE_BUCKETS",
    "Span",
    "registry_to_json",
    "registry_to_prometheus",
]
