"""repro — reproduction of "Estimating the Usefulness of Search Engines"
(Meng, Liu, Yu, Wu, Rishe; ICDE 1999).

The library implements, end to end, the paper's subrange-based statistical
method for estimating how useful a local search engine's database is for a
query — ``NoDoc`` (documents above a similarity threshold) and ``AvgSim``
(their average similarity) — plus every substrate the evaluation needs:
a vector-space retrieval stack, database representatives, the gGlOSS and
previous-method baselines, a metasearch broker, synthetic newsgroup corpora,
and the full Section 4 experiment harness.

Quickstart::

    from repro import (
        Collection, Query, SearchEngine, SubrangeEstimator,
        build_representative, true_usefulness,
    )

    collection = Collection.from_texts("demo", [("d1", "databases rule"),
                                                ("d2", "search engines")])
    engine = SearchEngine(collection)
    rep = build_representative(engine)
    query = Query.from_text("search engines")
    est = SubrangeEstimator().estimate(query, rep, threshold=0.3)
    true = true_usefulness(engine, query, threshold=0.3)
"""

from repro.core import (
    BasicEstimator,
    GenFunc,
    GlossDisjointEstimator,
    GlossHighCorrelationEstimator,
    PreviousMethodEstimator,
    SubrangeEstimator,
    Usefulness,
    UsefulnessEstimator,
    get_estimator,
    true_usefulness,
    true_usefulness_many,
)
from repro.corpus import Collection, Document, Query
from repro.engine import SearchEngine, SearchHit
from repro.metasearch import MetasearchBroker, ThresholdPolicy, TopKPolicy
from repro.obs import MetricsRegistry, NullRegistry, QueryTrace
from repro.representatives import (
    DatabaseRepresentative,
    SubrangeScheme,
    TermStats,
    build_representative,
    quantize_representative,
)
from repro.text import TextPipeline

__version__ = "1.0.0"

__all__ = [
    "BasicEstimator",
    "Collection",
    "DatabaseRepresentative",
    "Document",
    "GenFunc",
    "GlossDisjointEstimator",
    "GlossHighCorrelationEstimator",
    "MetasearchBroker",
    "MetricsRegistry",
    "NullRegistry",
    "PreviousMethodEstimator",
    "Query",
    "QueryTrace",
    "SearchEngine",
    "SearchHit",
    "SubrangeEstimator",
    "SubrangeScheme",
    "TermStats",
    "TextPipeline",
    "ThresholdPolicy",
    "TopKPolicy",
    "Usefulness",
    "UsefulnessEstimator",
    "__version__",
    "build_representative",
    "get_estimator",
    "quantize_representative",
    "true_usefulness",
    "true_usefulness_many",
]
