"""Document collections — the "database" behind one local search engine.

A :class:`Collection` stores documents in term-id space over its own
:class:`~repro.vsm.Vocabulary`.  The paper's evaluation databases are built
with exactly the operations provided here: D1 is one base collection, D2 and
D3 are merges (:meth:`Collection.merged`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.corpus.document import Document
from repro.text.pipeline import TextPipeline
from repro.vsm.vector import SparseVector
from repro.vsm.vocabulary import Vocabulary

__all__ = ["Collection"]


class Collection:
    """An ordered set of documents sharing one vocabulary.

    Documents are stored as sparse term-frequency vectors; the original term
    lists are recoverable only up to ordering, which is all the retrieval
    model needs.
    """

    def __init__(self, name: str):
        self.name = name
        self.vocabulary = Vocabulary()
        self._doc_ids: List[str] = []
        self._doc_id_set: Dict[str, int] = {}
        self._tf_vectors: List[SparseVector] = []
        self._doc_lengths: List[int] = []
        self._char_sizes: List[int] = []

    # -- construction --------------------------------------------------------

    def add_document(self, document: Document) -> int:
        """Add one document; returns its internal index.

        Raises :class:`ValueError` on duplicate ``doc_id`` — silent
        duplicates would skew every statistic the representative stores.
        """
        if document.doc_id in self._doc_id_set:
            raise ValueError(f"duplicate doc_id {document.doc_id!r}")
        counts: Dict[int, float] = {}
        for term in document.terms:
            tid = self.vocabulary.add(term)
            counts[tid] = counts.get(tid, 0.0) + 1.0
        index = len(self._doc_ids)
        self._doc_id_set[document.doc_id] = index
        self._doc_ids.append(document.doc_id)
        self._tf_vectors.append(SparseVector.from_mapping(counts))
        self._doc_lengths.append(document.length)
        text_size = (
            len(document.text)
            if document.text is not None
            else sum(len(t) + 1 for t in document.terms)
        )
        self._char_sizes.append(text_size)
        return index

    @classmethod
    def from_documents(cls, name: str, documents: Iterable[Document]) -> "Collection":
        """Build a collection from already-pipelined documents."""
        collection = cls(name)
        for document in documents:
            collection.add_document(document)
        return collection

    @classmethod
    def from_texts(
        cls,
        name: str,
        texts: Sequence[Tuple[str, str]],
        pipeline: Optional[TextPipeline] = None,
    ) -> "Collection":
        """Build from ``(doc_id, raw_text)`` pairs through a text pipeline."""
        pipeline = pipeline or TextPipeline()
        docs = (
            Document(doc_id=doc_id, terms=pipeline.terms(text), text=text)
            for doc_id, text in texts
        )
        return cls.from_documents(name, docs)

    @classmethod
    def merged(cls, name: str, collections: Sequence["Collection"]) -> "Collection":
        """Union of several collections under a fresh shared vocabulary.

        This is how the paper builds D2 (two largest newsgroups) and D3 (26
        smallest).  Document ids must remain globally unique; collides raise.
        """
        merged = cls(name)
        for source in collections:
            for i in range(len(source)):
                terms: List[str] = []
                for tid, tf in source._tf_vectors[i].items():
                    terms.extend([source.vocabulary.term_of(tid)] * int(tf))
                merged.add_document(Document(doc_id=source._doc_ids[i], terms=terms))
        return merged

    # -- accessors -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._doc_ids)

    @property
    def n_documents(self) -> int:
        return len(self._doc_ids)

    @property
    def n_terms(self) -> int:
        """Number of distinct terms in the collection."""
        return len(self.vocabulary)

    def doc_id(self, index: int) -> str:
        return self._doc_ids[index]

    def index_of(self, doc_id: str) -> int:
        """Internal index of an external document id; raises KeyError."""
        return self._doc_id_set[doc_id]

    def tf_vector(self, index: int) -> SparseVector:
        """Raw term-frequency vector of document ``index``."""
        return self._tf_vectors[index]

    def doc_length(self, index: int) -> int:
        return self._doc_lengths[index]

    def iter_tf_vectors(self) -> Iterator[Tuple[int, SparseVector]]:
        """Iterate ``(index, tf_vector)`` over all documents."""
        return enumerate(self._tf_vectors)

    def terms_of(self, index: int) -> List[str]:
        """Term strings (with repeats, sorted by id) of document ``index``."""
        out: List[str] = []
        for tid, tf in self._tf_vectors[index].items():
            out.extend([self.vocabulary.term_of(tid)] * int(tf))
        return out

    # -- statistics -----------------------------------------------------------

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term`` (linear scan; the
        inverted index in :mod:`repro.index` answers this in O(1))."""
        tid = self.vocabulary.id_of(term)
        if tid is None:
            return 0
        return sum(
            1
            for vec in self._tf_vectors
            if np.searchsorted(vec.indices, tid) < vec.nnz
            and vec.indices[np.searchsorted(vec.indices, tid)] == tid
        )

    def size_in_bytes(self) -> int:
        """Approximate raw size of the document text, for the scalability
        accounting of Section 3.2."""
        return sum(self._char_sizes)

    def size_in_pages(self, page_bytes: int = 2048) -> float:
        """Collection size in pages (the paper uses 2 KB pages)."""
        return self.size_in_bytes() / page_bytes

    def __repr__(self) -> str:
        return (
            f"Collection({self.name!r}, docs={self.n_documents}, "
            f"terms={self.n_terms})"
        )
