"""Query model.

A query is "simply a set of words submitted by a user ... transformed into a
vector of terms with weights" (paper, Section 1).  :class:`Query` stores the
distinct terms with raw (term-frequency) weights; the Cosine convention
normalizes the weight vector to unit length before matching, which
:meth:`Query.normalized_weights` provides.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.text.pipeline import TextPipeline

__all__ = ["Query"]


@dataclass(frozen=True)
class Query:
    """An immutable weighted query.

    Attributes:
        terms: Distinct term strings, in first-occurrence order.
        weights: Raw weights, parallel to ``terms`` (term frequency when
            built from text).
    """

    terms: Tuple[str, ...]
    weights: Tuple[float, ...]

    def __post_init__(self):
        if len(self.terms) != len(self.weights):
            raise ValueError("terms and weights must have equal length")
        if len(set(self.terms)) != len(self.terms):
            raise ValueError("query terms must be distinct")
        if any(w <= 0 for w in self.weights):
            raise ValueError("query weights must be positive")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_terms(cls, tokens: Iterable[str]) -> "Query":
        """Build from a token stream; repeats accumulate term frequency."""
        counts: Dict[str, float] = {}
        order: List[str] = []
        for token in tokens:
            if token not in counts:
                order.append(token)
                counts[token] = 0.0
            counts[token] += 1.0
        return cls(terms=tuple(order), weights=tuple(counts[t] for t in order))

    @classmethod
    def from_text(cls, text: str, pipeline: Optional[TextPipeline] = None) -> "Query":
        """Build from raw text through a text pipeline (default pipeline if
        omitted).  An all-stopword query yields an empty query."""
        pipeline = pipeline or TextPipeline()
        return cls.from_terms(pipeline.terms(text))

    # -- accessors -------------------------------------------------------------

    @property
    def n_terms(self) -> int:
        """Number of distinct query terms (r in the paper's notation)."""
        return len(self.terms)

    @property
    def is_single_term(self) -> bool:
        """True for the single-term queries of the paper's guarantee."""
        return len(self.terms) == 1

    def norm(self) -> float:
        """Euclidean norm of the raw weight vector."""
        return math.sqrt(sum(w * w for w in self.weights))

    def normalized_weights(self) -> np.ndarray:
        """Unit-norm weights — the ``u_i`` of the Cosine similarity."""
        arr = np.asarray(self.weights, dtype=float)
        n = self.norm()
        return arr / n if n > 0 else arr

    def items(self) -> Iterable[Tuple[str, float]]:
        """Iterate ``(term, raw_weight)`` pairs."""
        return zip(self.terms, self.weights)

    def normalized_items(self) -> Iterable[Tuple[str, float]]:
        """Iterate ``(term, normalized_weight)`` pairs."""
        return zip(self.terms, self.normalized_weights().tolist())

    def __repr__(self) -> str:
        shown = " ".join(self.terms[:6])
        return f"Query({shown!r}, n_terms={self.n_terms})"
