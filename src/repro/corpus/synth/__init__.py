"""Synthetic newsgroup corpora and SIFT-style query logs.

The paper's evaluation data — 53 newsgroup snapshots collected at Stanford
for gGlOSS, plus 6,234 real SIFT Netnews profile queries — is not publicly
available.  This subpackage generates a statistical stand-in: 53 topic
clusters over a Zipfian vocabulary with the same group-size profile (D1 =
largest group with 761 documents, D2 = two largest merged with 1,466, D3 =
26 smallest merged with 1,014) and a query log with the paper's length
histogram (~31% single-term, max 6 terms).  See DESIGN.md §3 for why this
substitution preserves the behaviour under study.
"""

from repro.corpus.synth.newsgroups import (
    NewsgroupModel,
    build_paper_databases,
    paper_group_sizes,
)
from repro.corpus.synth.queries import QueryLogModel
from repro.corpus.synth.wordgen import word_for_term_id
from repro.corpus.synth.zipf import ZipfDistribution

__all__ = [
    "NewsgroupModel",
    "QueryLogModel",
    "ZipfDistribution",
    "build_paper_databases",
    "paper_group_sizes",
    "word_for_term_id",
]
