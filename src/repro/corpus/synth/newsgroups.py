"""Synthetic newsgroup corpus: 53 topic-clustered collections.

Each group mixes a *group topic distribution* (a Zipf over a few hundred
group-specific terms drawn from the mid-frequency band) with the shared
background Zipf vocabulary.  Documents therefore carry both broadly common
terms and bursty topical terms — the two ingredients whose statistics
(document frequency, mean/std/max of normalized weights) drive the paper's
estimators.  Merging groups (D2, D3) mixes distinct topic cores, which is
exactly the inhomogeneity axis the paper manipulates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.corpus.collection import Collection
from repro.corpus.document import Document
from repro.corpus.synth.wordgen import word_for_term_id
from repro.corpus.synth.zipf import ZipfDistribution

__all__ = ["NewsgroupModel", "paper_group_sizes", "build_paper_databases"]

_N_GROUPS = 53
_LARGEST = 761          # |D1| in the paper
_SECOND_LARGEST = 705   # so the two largest merge to |D2| = 1,466
_SMALLEST_26_TOTAL = 1014  # |D3| in the paper


def _arithmetic_sizes(start: int, end: int, count: int, total: int) -> List[int]:
    """``count`` integers descending roughly from ``start`` to ``end`` that
    sum exactly to ``total``."""
    raw = np.linspace(start, end, count)
    sizes = np.floor(raw).astype(int)
    sizes = np.maximum(sizes, 1)
    deficit = total - int(sizes.sum())
    i = 0
    step = 1 if deficit > 0 else -1
    while deficit != 0:
        candidate = sizes[i % count] + step
        if candidate >= 1:
            sizes[i % count] = candidate
            deficit -= step
        i += 1
    return [int(s) for s in np.sort(sizes)[::-1]]


def paper_group_sizes() -> List[int]:
    """53 group sizes matching the paper's database construction.

    ``sizes[0] = 761`` (D1), ``sizes[0] + sizes[1] = 1466`` (D2), and the 26
    smallest sum to 1,014 (D3).  The 25 middle groups take an arithmetic
    profile between the extremes; their exact sizes only matter to the
    53-engine metasearch scenarios, not to the paper's tables.
    """
    middle = _arithmetic_sizes(600, 80, 25, total=8500)
    smallest = _arithmetic_sizes(70, 10, 26, total=_SMALLEST_26_TOTAL)
    return [_LARGEST, _SECOND_LARGEST] + middle + smallest


class NewsgroupModel:
    """Generator of the 53 synthetic newsgroup collections.

    Args:
        vocab_size: Size of the shared background vocabulary.
        topic_size: Number of group-specific topical terms per group.
        topic_band: (low, high) rank band the topical terms are drawn from;
            mid-band terms are content-bearing but not ubiquitous.
        topic_weight: Mean fraction of a document drawn from its group's
            topic distribution rather than the background.
        mean_length: Mean document length in tokens (lognormal).
        length_sigma: Lognormal sigma of document length.
        seed: Master seed; every group derives its own child stream, so
            generating group 7 alone equals group 7 of a full run.
    """

    def __init__(
        self,
        vocab_size: int = 30000,
        topic_size: int = 250,
        topic_band: Tuple[int, int] = (100, 8000),
        topic_weight: float = 0.45,
        mean_length: int = 120,
        length_sigma: float = 0.55,
        seed: int = 1999,
        group_sizes: Optional[Sequence[int]] = None,
    ):
        if not 0.0 <= topic_weight <= 1.0:
            raise ValueError(f"topic_weight must be in [0, 1], got {topic_weight!r}")
        if topic_band[0] < 0 or topic_band[1] > vocab_size or topic_band[0] >= topic_band[1]:
            raise ValueError(f"invalid topic_band {topic_band!r} for vocab {vocab_size}")
        self.vocab_size = vocab_size
        self.topic_size = topic_size
        self.topic_band = topic_band
        self.topic_weight = topic_weight
        self.mean_length = mean_length
        self.length_sigma = length_sigma
        self.seed = seed
        self.group_sizes = (
            list(group_sizes) if group_sizes is not None else paper_group_sizes()
        )
        self.background = ZipfDistribution(vocab_size)
        self._topic_terms_cache: dict = {}

    @property
    def n_groups(self) -> int:
        return len(self.group_sizes)

    # -- group structure -----------------------------------------------------

    def _group_rng(self, group: int, purpose: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence([self.seed, purpose, group])
        )

    def topic_terms(self, group: int) -> np.ndarray:
        """The group's topical term ids (deterministic per seed/group)."""
        if group not in self._topic_terms_cache:
            rng = self._group_rng(group, purpose=0)
            lo, hi = self.topic_band
            terms = rng.choice(
                np.arange(lo, hi), size=self.topic_size, replace=False
            )
            self._topic_terms_cache[group] = np.sort(terms)
        return self._topic_terms_cache[group]

    def topic_distribution(self, group: int) -> ZipfDistribution:
        """Zipf over the group's topical terms — a few dominate, most are
        rare, mirroring real topical vocabulary."""
        return ZipfDistribution(self.topic_size, exponent=1.0, shift=1.0)

    # -- sampling --------------------------------------------------------------

    def _sample_length(self, rng: np.random.Generator) -> int:
        mu = np.log(self.mean_length) - 0.5 * self.length_sigma**2
        length = int(round(float(rng.lognormal(mu, self.length_sigma))))
        return int(np.clip(length, 20, 8 * self.mean_length))

    def sample_document_term_ids(
        self, rng: np.random.Generator, group: int
    ) -> np.ndarray:
        """Term-id token stream for one document of ``group``."""
        length = self._sample_length(rng)
        # Per-document topicality jitters around the model mean.
        alpha = float(np.clip(rng.normal(self.topic_weight, 0.12), 0.05, 0.9))
        n_topic = int(round(alpha * length))
        topic_ranks = self.topic_distribution(group).sample(rng, n_topic)
        topic_ids = self.topic_terms(group)[topic_ranks]
        background_ids = self.background.sample(rng, length - n_topic)
        return np.concatenate([topic_ids, background_ids])

    def generate_group(self, group: int) -> Collection:
        """Materialize group ``group`` as a :class:`Collection`."""
        if not 0 <= group < self.n_groups:
            raise ValueError(f"group must be in [0, {self.n_groups}), got {group!r}")
        rng = self._group_rng(group, purpose=1)
        collection = Collection(f"group{group:02d}")
        for doc_index in range(self.group_sizes[group]):
            term_ids = self.sample_document_term_ids(rng, group)
            terms = [word_for_term_id(int(tid)) for tid in term_ids]
            collection.add_document(
                Document(doc_id=f"g{group:02d}d{doc_index:04d}", terms=terms)
            )
        return collection

    def generate_all(self) -> List[Collection]:
        """All groups, largest first (matches :func:`paper_group_sizes`)."""
        return [self.generate_group(g) for g in range(self.n_groups)]


def build_paper_databases(
    model: Optional[NewsgroupModel] = None,
) -> Tuple[Collection, Collection, Collection]:
    """Construct D1, D2 and D3 exactly as the paper does.

    D1 = largest group; D2 = merge of the two largest; D3 = merge of the 26
    smallest.  Only the 28 groups involved are generated.
    """
    model = model or NewsgroupModel()
    if model.n_groups < 28:
        raise ValueError("paper databases need at least 28 groups")
    largest = model.generate_group(0)
    second = model.generate_group(1)
    smallest = [
        model.generate_group(g) for g in range(model.n_groups - 26, model.n_groups)
    ]
    d1 = Collection.merged("D1", [largest])
    d2 = Collection.merged("D2", [largest, second])
    d3 = Collection.merged("D3", smallest)
    return d1, d2, d3
