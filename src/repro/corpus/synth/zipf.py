"""Truncated Zipf-Mandelbrot distribution over term ranks.

Term frequencies in natural-language corpora follow Zipf's law; the synthetic
corpus inherits its realistic df/tf skew from this distribution.  The
Mandelbrot shift ``q`` flattens the very top of the curve slightly, which
matches newsgroup text better than pure Zipf.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZipfDistribution"]


class ZipfDistribution:
    """P(rank = i) proportional to 1 / (i + 1 + q)^s for i in [0, size).

    Args:
        size: Number of ranks (vocabulary size).
        exponent: Zipf exponent ``s``; ~1.0-1.2 for English text.
        shift: Mandelbrot shift ``q`` >= 0.
    """

    def __init__(self, size: int, exponent: float = 1.07, shift: float = 2.0):
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size!r}")
        if exponent <= 0:
            raise ValueError(f"exponent must be positive, got {exponent!r}")
        if shift < 0:
            raise ValueError(f"shift must be >= 0, got {shift!r}")
        self.size = size
        self.exponent = exponent
        self.shift = shift
        ranks = np.arange(1, size + 1, dtype=float)
        weights = (ranks + shift) ** (-exponent)
        self._probs = weights / weights.sum()
        self._cumulative = np.cumsum(self._probs)
        # Guard against floating-point shortfall at the very end.
        self._cumulative[-1] = 1.0

    @property
    def probabilities(self) -> np.ndarray:
        """Probability of each rank (a copy; the internal array is frozen)."""
        return self._probs.copy()

    def probability(self, rank: int) -> float:
        """Probability of a single rank."""
        return float(self._probs[rank])

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` ranks i.i.d. (inverse-CDF sampling, O(n log V))."""
        u = rng.random(n)
        return np.searchsorted(self._cumulative, u, side="left")

    def __repr__(self) -> str:
        return (
            f"ZipfDistribution(size={self.size}, exponent={self.exponent}, "
            f"shift={self.shift})"
        )
