"""SIFT-style synthetic query log.

The paper's 6,234 queries are real SIFT Netnews subscription profiles: short
(<= 6 terms, ~31% single-term) and topical, since a profile subscribes to a
subject.  :class:`QueryLogModel` reproduces those marginals: the length
histogram matches the paper's statistics, and terms are drawn mostly from a
randomly chosen group's topical core with a background-term admixture.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.corpus.query import Query
from repro.corpus.synth.newsgroups import NewsgroupModel
from repro.corpus.synth.wordgen import word_for_term_id

__all__ = ["QueryLogModel"]

# Query-length histogram for lengths 1..6.  Single-term share 0.311 matches
# the paper (1,941 of 6,234); the tail follows the web-query length studies
# the paper cites ([1], [9]): frequency decays quickly with length.
_DEFAULT_LENGTH_PROBS = (0.311, 0.295, 0.190, 0.107, 0.058, 0.039)


class QueryLogModel:
    """Generator of topical short queries aligned with a newsgroup corpus.

    Args:
        corpus_model: The :class:`NewsgroupModel` the queries should target;
            query terms come from its vocabulary so estimators and engines
            resolve them.
        length_probs: Probability of each query length 1..len(length_probs).
        topical_fraction: Probability that a query term is drawn from the
            chosen group's topic core rather than the background vocabulary.
        seed: Seed for the query stream (independent of the corpus seed).
    """

    def __init__(
        self,
        corpus_model: NewsgroupModel,
        length_probs: Sequence[float] = _DEFAULT_LENGTH_PROBS,
        topical_fraction: float = 0.8,
        seed: int = 42,
    ):
        probs = np.asarray(length_probs, dtype=float)
        if probs.ndim != 1 or probs.size == 0 or np.any(probs < 0):
            raise ValueError("length_probs must be a non-empty non-negative vector")
        total = probs.sum()
        if not np.isclose(total, 1.0):
            raise ValueError(f"length_probs must sum to 1, got {total}")
        if not 0.0 <= topical_fraction <= 1.0:
            raise ValueError(
                f"topical_fraction must be in [0, 1], got {topical_fraction!r}"
            )
        self.corpus_model = corpus_model
        self.length_probs = probs
        self.topical_fraction = topical_fraction
        self.seed = seed

    def _sample_query_term_ids(
        self, rng: np.random.Generator, length: int
    ) -> List[int]:
        model = self.corpus_model
        group = int(rng.integers(model.n_groups))
        topic_terms = model.topic_terms(group)
        topic_dist = model.topic_distribution(group)
        chosen: List[int] = []
        seen = set()
        # Rejection-sample until the query has `length` distinct terms; the
        # vocabulary dwarfs the query length, so this terminates immediately
        # in practice.
        attempts = 0
        while len(chosen) < length and attempts < 1000:
            attempts += 1
            if rng.random() < self.topical_fraction:
                tid = int(topic_terms[topic_dist.sample(rng, 1)[0]])
            else:
                tid = int(model.background.sample(rng, 1)[0])
            if tid not in seen:
                seen.add(tid)
                chosen.append(tid)
        if len(chosen) < length:  # pragma: no cover - astronomically unlikely
            raise RuntimeError("failed to sample distinct query terms")
        return chosen

    def generate(self, n_queries: int = 6234) -> List[Query]:
        """Generate the query log (default size matches the paper)."""
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 2]))
        lengths = rng.choice(
            np.arange(1, self.length_probs.size + 1),
            size=n_queries,
            p=self.length_probs,
        )
        queries = []
        for length in lengths:
            term_ids = self._sample_query_term_ids(rng, int(length))
            terms = [word_for_term_id(tid) for tid in term_ids]
            queries.append(Query.from_terms(terms))
        return queries
