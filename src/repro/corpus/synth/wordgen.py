"""Deterministic pseudo-word generation for synthetic vocabularies.

Each term id maps to a unique pronounceable word built from
consonant-vowel syllables via bijective base-70 numeration, so the synthetic
corpus round-trips through the same string-keyed code paths as real text
while staying reproducible with no stored word list.  Ids are offset so
every word has at least three syllables, which keeps them off the stop-word
list and makes them fixed points of the Porter stemmer in practice.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = ["word_for_term_id"]

_ONSETS = ("b", "d", "f", "g", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z")
_NUCLEI = ("a", "e", "i", "o", "u")
_SYLLABLES = tuple(c + v for c in _ONSETS for v in _NUCLEI)  # 70 syllables
_BASE = len(_SYLLABLES)
# Bijective base-70 strings of length 1 or 2 number 70 + 70^2 = 4970; skipping
# past them guarantees >= 3 syllables for every term id.
_MIN_THREE_SYLLABLES = _BASE + _BASE * _BASE + 1


@lru_cache(maxsize=1 << 20)
def word_for_term_id(term_id: int) -> str:
    """Unique pseudo-word for ``term_id`` >= 0.

    Bijective numeration has no leading-zero ambiguity, so distinct ids
    always produce distinct words:

    >>> word_for_term_id(0) != word_for_term_id(1)
    True
    >>> len(word_for_term_id(0))
    6
    """
    if term_id < 0:
        raise ValueError(f"term_id must be >= 0, got {term_id!r}")
    n = term_id + _MIN_THREE_SYLLABLES
    syllables = []
    while n > 0:
        digit = n % _BASE
        if digit == 0:
            digit = _BASE
            n = n // _BASE - 1
        else:
            n //= _BASE
        syllables.append(_SYLLABLES[digit - 1])
    return "".join(reversed(syllables))
