"""Persistence for collections and query logs.

Collections serialize to gzipped JSON-lines: a header record with the
collection name followed by one record per document carrying the term-freq
mapping.  Queries serialize to one JSON object per line.  The format is
deliberately boring — greppable, diffable, stable across versions.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import List, Union

from repro.corpus.collection import Collection
from repro.corpus.document import Document
from repro.corpus.query import Query

__all__ = ["save_collection", "load_collection", "save_queries", "load_queries"]

_FORMAT_VERSION = 1


def _open_write(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "wt", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_read(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def save_collection(collection: Collection, path: Union[str, Path]) -> None:
    """Write ``collection`` to ``path`` (gzip when the name ends in .gz)."""
    path = Path(path)
    with _open_write(path) as fh:
        header = {
            "format": _FORMAT_VERSION,
            "kind": "collection",
            "name": collection.name,
            "n_documents": collection.n_documents,
        }
        fh.write(json.dumps(header) + "\n")
        for i in range(len(collection)):
            tf = {
                collection.vocabulary.term_of(tid): int(count)
                for tid, count in collection.tf_vector(i).items()
            }
            record = {"doc_id": collection.doc_id(i), "tf": tf}
            fh.write(json.dumps(record) + "\n")


def load_collection(path: Union[str, Path]) -> Collection:
    """Read a collection written by :func:`save_collection`."""
    path = Path(path)
    with _open_read(path) as fh:
        header = json.loads(fh.readline())
        if header.get("kind") != "collection":
            raise ValueError(f"{path} is not a collection file")
        if header.get("format") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported collection format {header.get('format')!r}"
            )
        collection = Collection(header["name"])
        for line in fh:
            record = json.loads(line)
            terms: List[str] = []
            for term, count in record["tf"].items():
                terms.extend([term] * int(count))
            collection.add_document(Document(doc_id=record["doc_id"], terms=terms))
    if collection.n_documents != header["n_documents"]:
        raise ValueError(
            f"{path}: header promises {header['n_documents']} documents, "
            f"found {collection.n_documents}"
        )
    return collection


def save_queries(queries: List[Query], path: Union[str, Path]) -> None:
    """Write a query log, one JSON object per line."""
    path = Path(path)
    with _open_write(path) as fh:
        for query in queries:
            fh.write(
                json.dumps({"terms": list(query.terms), "weights": list(query.weights)})
                + "\n"
            )


def load_queries(path: Union[str, Path]) -> List[Query]:
    """Read a query log written by :func:`save_queries`."""
    path = Path(path)
    queries = []
    with _open_read(path) as fh:
        for line in fh:
            record = json.loads(line)
            queries.append(
                Query(terms=tuple(record["terms"]), weights=tuple(record["weights"]))
            )
    return queries
