"""Document model.

A :class:`Document` is a unit of retrieval: an external identifier plus the
final index terms (post-pipeline).  The raw text is optional — synthetic
corpora are generated directly in term space — and never consulted by the
retrieval or estimation code, only by presentation layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["Document"]


@dataclass(frozen=True)
class Document:
    """An indexed document.

    Attributes:
        doc_id: External identifier, unique within its collection.
        terms: Index terms in occurrence order (repeats carry tf).
        text: Original raw text when the document came from text; None for
            synthetic term-space documents.
    """

    doc_id: str
    terms: List[str] = field(default_factory=list)
    text: Optional[str] = None

    @property
    def length(self) -> int:
        """Number of term occurrences (document length in tokens)."""
        return len(self.terms)

    def __repr__(self) -> str:
        return f"Document({self.doc_id!r}, {self.length} terms)"
