"""Corpus layer: documents, collections, persistence, synthetic generators.

A :class:`Collection` is the "database" of one local search engine in the
paper's two-level architecture.  Collections can be built from raw text (via
a :class:`repro.text.TextPipeline`), from pre-tokenized term lists (the
synthetic generator's output), merged (how the paper constructs D2 and D3),
and saved/loaded as JSON-lines.
"""

from repro.corpus.analysis import CorpusStatistics, analyze_collection, heaps_curve
from repro.corpus.collection import Collection
from repro.corpus.document import Document
from repro.corpus.io import load_collection, load_queries, save_collection, save_queries
from repro.corpus.query import Query
from repro.corpus.trec import iter_trec_documents, load_trec_collection

__all__ = [
    "Collection",
    "CorpusStatistics",
    "Document",
    "Query",
    "analyze_collection",
    "heaps_curve",
    "iter_trec_documents",
    "load_collection",
    "load_queries",
    "load_trec_collection",
    "save_collection",
    "save_queries",
]
