"""Corpus statistics: Zipf fit, Heaps growth, length and df distributions.

The data substitution (DESIGN.md §3) rests on the synthetic corpus having
realistic text statistics — skewed term frequencies (Zipf), sub-linear
vocabulary growth (Heaps), and skewed document frequencies — because those
are the distributions the representative summarizes.  This module measures
them for any collection so the claim is checkable, and the test suite pins
the synthetic generator to realistic ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.corpus.collection import Collection

__all__ = ["CorpusStatistics", "analyze_collection", "heaps_curve"]


@dataclass(frozen=True)
class CorpusStatistics:
    """Summary statistics of one collection.

    Attributes:
        n_documents: Document count.
        n_terms: Distinct terms.
        n_tokens: Total term occurrences.
        mean_doc_length / median_doc_length: Length distribution location.
        zipf_exponent: Slope of the log-log rank-frequency fit over the
            head of the vocabulary (~1 for natural text).
        zipf_r_squared: Goodness of that fit.
        heaps_beta: Exponent of the Heaps-law fit ``V = K * N^beta``
            (0.4-0.8 for natural text).
        df_gini: Gini coefficient of the document-frequency distribution —
            0 means all terms equally common, near 1 means a tiny head
            dominates (natural text is highly skewed).
    """

    n_documents: int
    n_terms: int
    n_tokens: int
    mean_doc_length: float
    median_doc_length: float
    zipf_exponent: float
    zipf_r_squared: float
    heaps_beta: float
    df_gini: float


def _collection_frequencies(collection: Collection) -> np.ndarray:
    cf = np.zeros(len(collection.vocabulary))
    for __, tf_vector in collection.iter_tf_vectors():
        cf[tf_vector.indices] += tf_vector.values
    return cf


def _document_frequencies(collection: Collection) -> np.ndarray:
    df = np.zeros(len(collection.vocabulary))
    for __, tf_vector in collection.iter_tf_vectors():
        df[tf_vector.indices] += 1
    return df


def _fit_loglog(x: np.ndarray, y: np.ndarray) -> Tuple[float, float]:
    """Least-squares slope and R^2 of log(y) against log(x)."""
    lx, ly = np.log(x), np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    predicted = slope * lx + intercept
    residual = np.sum((ly - predicted) ** 2)
    total = np.sum((ly - ly.mean()) ** 2)
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return float(slope), float(r_squared)


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative distribution."""
    values = np.sort(np.asarray(values, dtype=float))
    n = values.size
    total = values.sum()
    if n == 0 or total == 0.0:
        return 0.0
    ranks = np.arange(1, n + 1)
    return float((2.0 * np.dot(ranks, values) / (n * total)) - (n + 1) / n)


def heaps_curve(collection: Collection, points: int = 40) -> List[Tuple[int, int]]:
    """Vocabulary size after each prefix of the collection.

    Returns up to ``points`` samples of ``(tokens seen, distinct terms)``
    suitable for fitting Heaps' law.
    """
    seen = set()
    tokens = 0
    curve = []
    step = max(1, len(collection) // points)
    for i in range(len(collection)):
        tf_vector = collection.tf_vector(i)
        tokens += int(tf_vector.values.sum())
        seen.update(tf_vector.indices.tolist())
        if (i + 1) % step == 0 or i == len(collection) - 1:
            curve.append((tokens, len(seen)))
    return curve


def analyze_collection(collection: Collection, zipf_head: int = 1000) -> CorpusStatistics:
    """Measure the text statistics of ``collection``.

    Args:
        collection: The collection to analyze (must be non-empty).
        zipf_head: How many top-frequency ranks enter the Zipf fit; the
            tail of any finite corpus flattens and would bias the slope.
    """
    if len(collection) == 0:
        raise ValueError("cannot analyze an empty collection")
    lengths = np.array(
        [collection.doc_length(i) for i in range(len(collection))], dtype=float
    )
    cf = _collection_frequencies(collection)
    cf_sorted = np.sort(cf[cf > 0])[::-1]
    head = cf_sorted[: min(zipf_head, cf_sorted.size)]
    ranks = np.arange(1, head.size + 1, dtype=float)
    if head.size >= 2:
        slope, r_squared = _fit_loglog(ranks, head)
    else:
        slope, r_squared = 0.0, 1.0

    curve = heaps_curve(collection)
    if len(curve) >= 2:
        tokens = np.array([c[0] for c in curve], dtype=float)
        vocab = np.array([c[1] for c in curve], dtype=float)
        heaps_beta, __ = _fit_loglog(tokens, vocab)
    else:
        heaps_beta = 1.0

    df = _document_frequencies(collection)
    return CorpusStatistics(
        n_documents=len(collection),
        n_terms=collection.n_terms,
        n_tokens=int(cf.sum()),
        mean_doc_length=float(lengths.mean()),
        median_doc_length=float(np.median(lengths)),
        zipf_exponent=-slope,
        zipf_r_squared=r_squared,
        heaps_beta=heaps_beta,
        df_gini=_gini(df[df > 0]),
    )
