"""Loader for TREC-style SGML document collections.

The scalability table of Section 3.2 is computed over WSJ, FR and DOE —
TREC disks distributed as concatenated SGML documents::

    <DOC>
    <DOCNO> WSJ870324-0001 </DOCNO>
    <HL> Headline text </HL>
    <TEXT>
    Body text ...
    </TEXT>
    </DOC>

This parser turns such files into :class:`~repro.corpus.Collection` objects
so users who hold the (licensed) TREC data can run every experiment on the
paper's actual corpora.  It is a forgiving line-oriented parser: any tag
other than DOC/DOCNO contributes its inner text as document content, which
matches how SMART-era systems indexed these disks.
"""

from __future__ import annotations

import gzip
import re
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.corpus.collection import Collection
from repro.corpus.document import Document
from repro.text.pipeline import TextPipeline

__all__ = ["iter_trec_documents", "load_trec_collection"]

_DOC_OPEN = re.compile(r"<DOC>", re.IGNORECASE)
_DOC_CLOSE = re.compile(r"</DOC>", re.IGNORECASE)
_DOCNO = re.compile(r"<DOCNO>\s*(.*?)\s*</DOCNO>", re.IGNORECASE | re.DOTALL)
_TAG = re.compile(r"<[^>]+>")


def _open_text(path: Path):
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8", errors="replace")
    return open(path, "r", encoding="utf-8", errors="replace")


def iter_trec_documents(path: Union[str, Path]) -> Iterator[Tuple[str, str]]:
    """Yield ``(docno, text)`` pairs from one TREC SGML file.

    Documents without a DOCNO get a synthesized id ``<stem>-<ordinal>``.
    Raises :class:`ValueError` on an unterminated ``<DOC>`` block, which in
    practice means a truncated file.
    """
    path = Path(path)
    buffer: List[str] = []
    inside = False
    ordinal = 0
    with _open_text(path) as fh:
        for line in fh:
            if not inside:
                if _DOC_OPEN.search(line):
                    inside = True
                    buffer = []
                continue
            if _DOC_CLOSE.search(line):
                inside = False
                ordinal += 1
                raw = "".join(buffer)
                match = _DOCNO.search(raw)
                docno = (
                    match.group(1).strip()
                    if match
                    else f"{path.stem}-{ordinal}"
                )
                body = _DOCNO.sub(" ", raw)
                text = _TAG.sub(" ", body)
                yield docno, " ".join(text.split())
            else:
                buffer.append(line)
    if inside:
        raise ValueError(f"{path}: unterminated <DOC> block (truncated file?)")


def load_trec_collection(
    paths: Union[str, Path, Iterable[Union[str, Path]]],
    name: str,
    pipeline: Optional[TextPipeline] = None,
    limit: Optional[int] = None,
) -> Collection:
    """Build a collection from one or more TREC SGML files.

    Args:
        paths: A file path or iterable of file paths (.gz transparently
            decompressed).
        name: Name for the resulting collection.
        pipeline: Text pipeline (default pipeline if omitted).
        limit: Optional cap on the number of documents loaded.
    """
    if isinstance(paths, (str, Path)):
        paths = [paths]
    pipeline = pipeline or TextPipeline()
    collection = Collection(name)
    loaded = 0
    for path in paths:
        for docno, text in iter_trec_documents(path):
            collection.add_document(
                Document(doc_id=docno, terms=pipeline.terms(text), text=text)
            )
            loaded += 1
            if limit is not None and loaded >= limit:
                return collection
    return collection
