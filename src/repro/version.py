"""Single source of the package version string.

The CLI's ``--version`` flag and the serving layer's ``Server`` /
``X-Repro-Version`` response headers must agree, so both read from here.
The installed distribution metadata wins (that is what an operator
deployed); a source checkout run straight off ``PYTHONPATH=src`` has no
metadata and falls back to the in-tree ``repro.__version__``.
"""

from __future__ import annotations

from importlib import metadata

__all__ = ["package_version"]


def package_version() -> str:
    """The version of the running repro distribution."""
    try:
        return metadata.version("repro")
    except metadata.PackageNotFoundError:
        from repro import __version__

        return __version__
