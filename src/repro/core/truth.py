"""Exact usefulness — the ground truth of the evaluation.

``NoDoc(T, q, D)`` and ``AvgSim(T, q, D)`` (Equations (1) and (2)) computed
by scoring every document that shares a term with the query, via the
engine's inverted index.  Used for the "true usefulness" columns of every
table and as the oracle in tests of the estimators.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.types import Usefulness
from repro.corpus.query import Query
from repro.engine.search_engine import SearchEngine

__all__ = ["true_usefulness", "true_usefulness_many"]


def _usefulness_from_sims(sims: np.ndarray, threshold: float) -> Usefulness:
    above = sims[sims > threshold]
    if above.size == 0:
        return Usefulness.zero()
    return Usefulness(nodoc=float(above.size), avgsim=float(above.mean()))


def true_usefulness(
    engine: SearchEngine, query: Query, threshold: float
) -> Usefulness:
    """Exact (NoDoc, AvgSim) of the engine's database for ``query``."""
    __, sims = engine.similarities(query)
    return _usefulness_from_sims(sims, threshold)


def true_usefulness_many(
    engine: SearchEngine, query: Query, thresholds: Sequence[float]
) -> List[Usefulness]:
    """Exact usefulness at several thresholds from a single similarity scan."""
    __, sims = engine.similarities(query)
    return [_usefulness_from_sims(sims, t) for t in thresholds]
