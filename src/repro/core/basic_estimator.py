"""The basic (uniform-weight) estimation method — Proposition 1.

Every document containing term ``t`` is assumed to carry the term's average
weight ``w``, so the per-term polynomial is ``p * X^(u*w) + (1-p)``
(Expression (7)).  Examples 3.1/3.2 of the paper execute exactly this
method; it is also the foundation the subrange refinement builds on.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.base import ExpansionEstimator, register_estimator
from repro.corpus.query import Query
from repro.representatives.representative import DatabaseRepresentative

__all__ = ["BasicEstimator"]


class BasicEstimator(ExpansionEstimator):
    """Generating-function estimator with one weight point per term."""

    name = "basic"
    label = "basic method"

    def polynomials(
        self, query: Query, representative: DatabaseRepresentative
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        polys = []
        for term, u in query.normalized_items():
            stats = representative.get(term)
            if stats is None or stats.probability <= 0.0:
                continue
            p = stats.probability
            exponents = np.array([u * stats.mean, 0.0])
            coeffs = np.array([p, 1.0 - p])
            polys.append((exponents, coeffs))
        return polys


register_estimator("basic", BasicEstimator)
