"""The basic (uniform-weight) estimation method — Proposition 1.

Every document containing term ``t`` is assumed to carry the term's average
weight ``w``, so the per-term polynomial is ``p * X^(u*w) + (1-p)``
(Expression (7)).  Examples 3.1/3.2 of the paper execute exactly this
method; it is also the foundation the subrange refinement builds on.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.base import ExpansionEstimator, register_estimator

__all__ = ["BasicEstimator"]


class BasicEstimator(ExpansionEstimator):
    """Generating-function estimator with one weight point per term."""

    name = "basic"
    label = "basic method"

    def term_polynomial(
        self, u: float, stats, context
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Expression (7): ``p * X^(u*w) + (1-p)`` for one query term."""
        p = stats.probability
        return np.array([u * stats.mean, 0.0]), np.array([p, 1.0 - p])


register_estimator("basic", BasicEstimator)
