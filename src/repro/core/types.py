"""Shared value types for usefulness estimation."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Usefulness"]


@dataclass(frozen=True)
class Usefulness:
    """The paper's usefulness pair for one (query, database, threshold).

    Attributes:
        nodoc: (Estimated or true) number of documents whose similarity with
            the query exceeds the threshold — Equation (1).
        avgsim: (Estimated or true) average similarity of those documents —
            Equation (2); defined as 0 when ``nodoc`` is 0.
    """

    nodoc: float
    avgsim: float

    def __post_init__(self):
        if self.nodoc < 0.0:
            raise ValueError(f"nodoc must be >= 0, got {self.nodoc!r}")
        if self.avgsim < 0.0:
            raise ValueError(f"avgsim must be >= 0, got {self.avgsim!r}")

    @property
    def nodoc_rounded(self) -> int:
        """NoDoc rounded to an integer, as the paper does before comparing
        ("All estimated usefulnesses are rounded to integers").  Rounds half
        up — an estimate of 0.5 documents identifies the database as useful —
        rather than Python's default banker's rounding."""
        return int(math.floor(self.nodoc + 0.5))

    @property
    def identifies_useful(self) -> bool:
        """Whether this value identifies the database as useful (rounded
        NoDoc of at least one document)."""
        return self.nodoc_rounded >= 1

    @classmethod
    def zero(cls) -> "Usefulness":
        return cls(nodoc=0.0, avgsim=0.0)
