"""The paper's primary contribution: usefulness estimation.

* :mod:`repro.core.genfunc` — sparse real-exponent probability generating
  functions (Expression (3)/(5) of the paper).
* :mod:`repro.core.subrange_estimator` — the subrange-based method
  (Section 3.1), in quadruplet and triplet (estimated-max) modes.
* :mod:`repro.core.basic_estimator` — the uniform-weight basic method of
  Proposition 1.
* :mod:`repro.core.prev_estimator` — reconstruction of the authors'
  previous method (VLDB'98), the second baseline of the evaluation.
* :mod:`repro.core.gloss` — the gGlOSS high-correlation and disjoint
  estimators, the third baseline.
* :mod:`repro.core.truth` — exact usefulness, the evaluation ground truth.
"""

from repro.core.base import (
    EstimateExplanation,
    ExpansionEstimator,
    TermContribution,
    UsefulnessEstimator,
    get_estimator,
)
from repro.core.basic_estimator import BasicEstimator
from repro.core.binary_estimator import BinaryIndependenceEstimator
from repro.core.empirical_estimator import EmpiricalSubrangeEstimator
from repro.core.genfunc import GenFunc
from repro.core.gloss import GlossDisjointEstimator, GlossHighCorrelationEstimator
from repro.core.prev_estimator import PreviousMethodEstimator
from repro.core.subrange_estimator import SubrangeEstimator
from repro.core.truth import true_usefulness, true_usefulness_many
from repro.core.types import Usefulness
from repro.core.vectorized import (
    fallback_count,
    fleet_usefulness_grid,
    reset_fallback_count,
    supports_fleet,
)

__all__ = [
    "BasicEstimator",
    "BinaryIndependenceEstimator",
    "EmpiricalSubrangeEstimator",
    "EstimateExplanation",
    "ExpansionEstimator",
    "TermContribution",
    "GenFunc",
    "GlossDisjointEstimator",
    "GlossHighCorrelationEstimator",
    "PreviousMethodEstimator",
    "SubrangeEstimator",
    "Usefulness",
    "UsefulnessEstimator",
    "fallback_count",
    "fleet_usefulness_grid",
    "get_estimator",
    "reset_fallback_count",
    "supports_fleet",
    "true_usefulness",
    "true_usefulness_many",
]
