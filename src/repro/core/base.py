"""Estimator interfaces and the estimator registry.

Two families of estimators exist in the paper:

* *Expansion estimators* (basic, subrange) build a threshold-independent
  generating function per (query, database) and answer every threshold from
  the same expansion — the paper's "little additional effort" observation.
  They subclass :class:`ExpansionEstimator` and implement
  :meth:`ExpansionEstimator.polynomials`.
* *Direct estimators* (gGlOSS variants, the previous method) compute each
  threshold independently and subclass :class:`UsefulnessEstimator` directly.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.genfunc import GenFunc
from repro.core.types import Usefulness
from repro.corpus.query import Query
from repro.obs.registry import LATENCY_BUCKETS, MASS_BUCKETS, NULL_REGISTRY, SIZE_BUCKETS
from repro.representatives.representative import DatabaseRepresentative

__all__ = [
    "EstimateExplanation",
    "ExpansionEstimator",
    "TermContribution",
    "UsefulnessEstimator",
    "get_estimator",
    "register_estimator",
]


@dataclass(frozen=True)
class TermContribution:
    """How one query term entered the generating function.

    Attributes:
        term: The term string.
        query_weight: Its normalized query weight ``u``.
        matched: Whether the representative knows the term.
        polynomial_size: Number of (exponent, coeff) points contributed.
        max_exponent: The largest similarity contribution the term can
            make (``u * mw`` for the subrange method).
        occurrence_probability: The representative's ``p`` (0 if unmatched).
    """

    term: str
    query_weight: float
    matched: bool
    polynomial_size: int
    max_exponent: float
    occurrence_probability: float


@dataclass(frozen=True)
class EstimateExplanation:
    """A debuggable account of one expansion-based estimate.

    Attributes:
        estimate: The (NoDoc, AvgSim) answer.
        threshold: The threshold it answers.
        terms: Per-query-term contributions, in query order.
        expansion_terms: Size of the expanded generating function.
        tail_mass: Probability mass above the threshold.
        pruned_mass: Probability mass dropped by the prune floor.
    """

    estimate: Usefulness
    threshold: float
    terms: List[TermContribution]
    expansion_terms: int
    tail_mass: float
    pruned_mass: float


class UsefulnessEstimator(ABC):
    """Estimates (NoDoc, AvgSim) from a database representative."""

    #: Short machine name used by the registry, CLI and benchmark tables.
    name: str = "abstract"
    #: Human-readable label used in rendered tables.
    label: str = "abstract"
    #: Metrics sink; the shared no-op registry until :meth:`instrument`.
    registry = NULL_REGISTRY

    def instrument(self, registry) -> "UsefulnessEstimator":
        """Route this estimator's metrics to ``registry``; returns self.

        The base estimators record nothing; :class:`ExpansionEstimator`
        reports expansion time, generating-function term counts, and
        pruned probability mass.
        """
        self.registry = registry if registry is not None else NULL_REGISTRY
        return self

    @abstractmethod
    def estimate(
        self,
        query: Query,
        representative: DatabaseRepresentative,
        threshold: float,
    ) -> Usefulness:
        """Estimated usefulness of the database for ``query`` at ``threshold``."""

    def estimate_many(
        self,
        query: Query,
        representative: DatabaseRepresentative,
        thresholds: Sequence[float],
    ) -> List[Usefulness]:
        """Estimates for several thresholds; subclasses override when they
        can share work across thresholds."""
        return [self.estimate(query, representative, t) for t in thresholds]

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ExpansionEstimator(UsefulnessEstimator):
    """Estimator whose answers come from one generating-function expansion.

    Args:
        decimals: Exponent rounding applied while expanding (see
            :class:`~repro.core.genfunc.GenFunc`).
        prune_floor: Probability floor below which expansion terms are
            dropped (their mass stays accounted in ``pruned_mass``).
    """

    def __init__(self, decimals: int = 8, prune_floor: float = 0.0):
        self.decimals = decimals
        self.prune_floor = prune_floor

    @abstractmethod
    def polynomials(
        self, query: Query, representative: DatabaseRepresentative
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-query-term ``(exponents, coeffs)`` polynomials (Expr. (3)).

        Terms unknown to the representative contribute nothing and must be
        omitted; the returned list must follow query-term order (the
        contract :meth:`explain` relies on to attribute polynomials back to
        terms).
        """

    def expand(
        self, query: Query, representative: DatabaseRepresentative
    ) -> GenFunc:
        """Expand the full generating function for (query, database).

        Each expansion reports its duration, final term count, and pruned
        probability mass to the estimator's metrics registry (no-op unless
        :meth:`~UsefulnessEstimator.instrument`-ed).
        """
        start = time.perf_counter()
        expansion = GenFunc.product(
            self.polynomials(query, representative),
            decimals=self.decimals,
            prune_floor=self.prune_floor,
        )
        registry = self.registry
        registry.counter("estimator.expansions").inc()
        registry.histogram(
            "estimator.expansion.seconds", buckets=LATENCY_BUCKETS
        ).observe(time.perf_counter() - start)
        registry.histogram(
            "estimator.genfunc.terms", buckets=SIZE_BUCKETS
        ).observe(expansion.n_terms)
        registry.histogram(
            "estimator.pruned.mass", buckets=MASS_BUCKETS
        ).observe(expansion.pruned_mass)
        return expansion

    def estimate(
        self,
        query: Query,
        representative: DatabaseRepresentative,
        threshold: float,
    ) -> Usefulness:
        expansion = self.expand(query, representative)
        return Usefulness(
            nodoc=expansion.est_nodoc(threshold, representative.n_documents),
            avgsim=expansion.est_avgsim(threshold),
        )

    def estimate_many(
        self,
        query: Query,
        representative: DatabaseRepresentative,
        thresholds: Sequence[float],
    ) -> List[Usefulness]:
        """One expansion answers every threshold."""
        expansion = self.expand(query, representative)
        n = representative.n_documents
        return [
            Usefulness(
                nodoc=expansion.est_nodoc(t, n), avgsim=expansion.est_avgsim(t)
            )
            for t in thresholds
        ]

    def explain(
        self,
        query: Query,
        representative: DatabaseRepresentative,
        threshold: float,
    ) -> EstimateExplanation:
        """A per-term, inspectable account of one estimate.

        Useful when an engine is selected (or skipped) unexpectedly: the
        explanation shows which terms the representative matched, each
        term's maximum possible contribution, the expansion size, and where
        the probability mass sits relative to the threshold.
        """
        polys = self.polynomials(query, representative)
        poly_iter = iter(polys)
        contributions = []
        for term, u in query.normalized_items():
            stats = representative.get(term)
            matched = stats is not None and stats.probability > 0.0
            if matched:
                exponents, __ = next(poly_iter)
                contributions.append(
                    TermContribution(
                        term=term,
                        query_weight=u,
                        matched=True,
                        polynomial_size=int(len(exponents)),
                        max_exponent=float(np.max(exponents)),
                        occurrence_probability=stats.probability,
                    )
                )
            else:
                contributions.append(
                    TermContribution(
                        term=term,
                        query_weight=u,
                        matched=False,
                        polynomial_size=0,
                        max_exponent=0.0,
                        occurrence_probability=0.0,
                    )
                )
        expansion = GenFunc.product(
            polys, decimals=self.decimals, prune_floor=self.prune_floor
        )
        estimate = Usefulness(
            nodoc=expansion.est_nodoc(threshold, representative.n_documents),
            avgsim=expansion.est_avgsim(threshold),
        )
        return EstimateExplanation(
            estimate=estimate,
            threshold=threshold,
            terms=contributions,
            expansion_terms=expansion.n_terms,
            tail_mass=expansion.tail_mass(threshold),
            pruned_mass=expansion.pruned_mass,
        )


_REGISTRY: Dict[str, Callable[[], UsefulnessEstimator]] = {}


def register_estimator(name: str, factory: Callable[[], UsefulnessEstimator]) -> None:
    """Register an estimator factory under a short name."""
    if name in _REGISTRY:
        raise ValueError(f"estimator {name!r} already registered")
    _REGISTRY[name] = factory


def get_estimator(name: str) -> UsefulnessEstimator:
    """Instantiate a registered estimator ('subrange', 'basic', 'prev',
    'gloss-hc', 'gloss-disjoint', 'subrange-triplet', ...)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown estimator {name!r}; known: {known}")
    return factory()
