"""Estimator interfaces and the estimator registry.

Two families of estimators exist in the paper:

* *Expansion estimators* (basic, subrange) build a threshold-independent
  generating function per (query, database) and answer every threshold from
  the same expansion — the paper's "little additional effort" observation.
  They subclass :class:`ExpansionEstimator` and implement
  :meth:`ExpansionEstimator.polynomials`.
* *Direct estimators* (gGlOSS variants, the previous method) compute each
  threshold independently and subclass :class:`UsefulnessEstimator` directly.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.genfunc import GenFunc
from repro.core.types import Usefulness
from repro.corpus.query import Query
from repro.obs.registry import LATENCY_BUCKETS, MASS_BUCKETS, NULL_REGISTRY, SIZE_BUCKETS
from repro.representatives.representative import DatabaseRepresentative

__all__ = [
    "EstimateExplanation",
    "ExpansionEstimator",
    "TermContribution",
    "UsefulnessEstimator",
    "get_estimator",
    "register_estimator",
]


@dataclass(frozen=True)
class TermContribution:
    """How one query term entered the generating function.

    Attributes:
        term: The term string.
        query_weight: Its normalized query weight ``u``.
        matched: Whether the representative knows the term.
        polynomial_size: Number of (exponent, coeff) points contributed.
        max_exponent: The largest similarity contribution the term can
            make (``u * mw`` for the subrange method).
        occurrence_probability: The representative's ``p`` (0 if unmatched).
    """

    term: str
    query_weight: float
    matched: bool
    polynomial_size: int
    max_exponent: float
    occurrence_probability: float


@dataclass(frozen=True)
class EstimateExplanation:
    """A debuggable account of one expansion-based estimate.

    Attributes:
        estimate: The (NoDoc, AvgSim) answer.
        threshold: The threshold it answers.
        terms: Per-query-term contributions, in query order.
        expansion_terms: Size of the expanded generating function.
        tail_mass: Probability mass above the threshold.
        pruned_mass: Probability mass dropped by the prune floor.
    """

    estimate: Usefulness
    threshold: float
    terms: List[TermContribution]
    expansion_terms: int
    tail_mass: float
    pruned_mass: float


class UsefulnessEstimator(ABC):
    """Estimates (NoDoc, AvgSim) from a database representative."""

    #: Short machine name used by the registry, CLI and benchmark tables.
    name: str = "abstract"
    #: Human-readable label used in rendered tables.
    label: str = "abstract"
    #: Metrics sink; the shared no-op registry until :meth:`instrument`.
    registry = NULL_REGISTRY
    #: True when an estimate depends only on the query terms' own
    #: statistics plus the document count.  The broker's precise cache
    #: invalidation (per-term eviction on a representative delta) is sound
    #: only for term-local estimators; the conservative default keeps the
    #: degraded whole-engine eviction for anything that reduces over the
    #: full representative (e.g. the binary baseline's database weight).
    term_local: bool = False

    def instrument(self, registry) -> "UsefulnessEstimator":
        """Route this estimator's metrics to ``registry``; returns self.

        The base estimators record nothing; :class:`ExpansionEstimator`
        reports expansion time, generating-function term counts, and
        pruned probability mass.
        """
        self.registry = registry if registry is not None else NULL_REGISTRY
        return self

    @abstractmethod
    def estimate(
        self,
        query: Query,
        representative: DatabaseRepresentative,
        threshold: float,
    ) -> Usefulness:
        """Estimated usefulness of the database for ``query`` at ``threshold``."""

    def estimate_many(
        self,
        query: Query,
        representative: DatabaseRepresentative,
        thresholds: Sequence[float],
    ) -> List[Usefulness]:
        """Estimates for several thresholds; subclasses override when they
        can share work across thresholds."""
        return [self.estimate(query, representative, t) for t in thresholds]

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _frozen_polynomial(
    polynomial: Tuple[np.ndarray, np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """A read-only copy of a ``(exponents, coeffs)`` factor, safe to share
    from a cache across queries and threads."""
    exponents = np.asarray(polynomial[0], dtype=float)
    coeffs = np.asarray(polynomial[1], dtype=float)
    exponents.setflags(write=False)
    coeffs.setflags(write=False)
    return (exponents, coeffs)


class ExpansionEstimator(UsefulnessEstimator):
    """Estimator whose answers come from one generating-function expansion.

    Subclasses implement :meth:`term_polynomial` — a pure function of one
    query term's ``(weight, stats, context)`` — and the base class builds
    the per-query factor list, optionally memoizing each factor in a
    :class:`~repro.metasearch.cache.TermPolynomialCache` shared across
    queries (the factors depend only on the representative, the term, and
    the normalized query weight, so a term-skewed workload recomputes
    almost nothing).

    Args:
        decimals: Exponent rounding applied while expanding (see
            :class:`~repro.core.genfunc.GenFunc`).
        prune_floor: Probability floor below which expansion terms are
            dropped (their mass stays accounted in ``pruned_mass``).
        max_terms: Adaptive expansion budget — an intermediate product
            larger than this is shrunk by geometrically tightening the
            prune floor (see :meth:`GenFunc.budgeted`).  ``None`` disables
            the budget.
    """

    #: The default expansion context is the document count alone, so each
    #: term's factor depends only on that term's statistics — per-term
    #: cache invalidation is sound.  Subclasses whose context reduces over
    #: the whole representative must reset this to False.
    term_local: bool = True

    def __init__(
        self,
        decimals: int = 8,
        prune_floor: float = 0.0,
        max_terms: Optional[int] = None,
    ):
        if max_terms is not None and max_terms < 1:
            raise ValueError(f"max_terms must be >= 1, got {max_terms!r}")
        self.decimals = decimals
        self.prune_floor = prune_floor
        self.max_terms = max_terms

    @abstractmethod
    def term_polynomial(
        self, u: float, stats, context
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(exponents, coeffs)`` factor of one matched query term.

        Args:
            u: The term's normalized query weight.
            stats: The representative's statistics for the term (never
                None, and ``probability > 0``).
            context: Whatever :meth:`_polynomial_context` returned for the
                representative — per-database constants shared by every
                term of a query (the document count, by default).
        """

    def _polynomial_context(self, representative: DatabaseRepresentative):
        """Per-database constants handed to every :meth:`term_polynomial`
        call of a query; computed once per factor-list build."""
        return representative.n_documents

    def polynomial_config(self) -> Tuple:
        """Hashable description of everything (besides the representative,
        term, and query weight) that determines :meth:`term_polynomial`'s
        output — the estimator component of a term-polynomial cache key.

        Subclasses with extra knobs that change the factor (subrange
        scheme, stored-max mode, ...) must extend this tuple.
        """
        return (type(self).__name__,)

    def polynomials(
        self,
        query: Query,
        representative: DatabaseRepresentative,
        polycache=None,
        engine: Optional[str] = None,
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Per-query-term ``(exponents, coeffs)`` polynomials (Expr. (3)).

        Terms unknown to the representative contribute nothing and are
        omitted; the returned list follows query-term order (the contract
        :meth:`explain` relies on to attribute polynomials back to terms).

        Args:
            polycache: Optional
                :class:`~repro.metasearch.cache.TermPolynomialCache`; with
                ``engine`` set, each factor is looked up before being
                computed and stored after (unmatched terms are negatively
                cached).  Cached factors are the exact arrays a fresh
                computation would produce, so results are bit-identical.
            engine: Cache namespace — the engine whose representative this
                is; per-engine invalidation rides on it.
        """
        context = self._polynomial_context(representative)
        polys: List[Tuple[np.ndarray, np.ndarray]] = []
        if polycache is not None and engine is not None:
            config = self.polynomial_config()
            for term, u in query.normalized_items():
                hit, poly = polycache.lookup(config, engine, term, u)
                if not hit:
                    stats = representative.get(term)
                    if stats is None or stats.probability <= 0.0:
                        poly = None
                    else:
                        poly = _frozen_polynomial(
                            self.term_polynomial(u, stats, context)
                        )
                    polycache.store(config, engine, term, u, poly)
                if poly is not None:
                    polys.append(poly)
            return polys
        for term, u in query.normalized_items():
            stats = representative.get(term)
            if stats is None or stats.probability <= 0.0:
                continue
            polys.append(self.term_polynomial(u, stats, context))
        return polys

    def expand(
        self,
        query: Query,
        representative: DatabaseRepresentative,
        polycache=None,
        engine: Optional[str] = None,
    ) -> GenFunc:
        """Expand the full generating function for (query, database).

        Each expansion reports its duration, final term count, and pruned
        probability mass to the estimator's metrics registry (no-op unless
        :meth:`~UsefulnessEstimator.instrument`-ed).  ``polycache`` /
        ``engine`` memoize the per-term factors (see :meth:`polynomials`).
        """
        start = time.perf_counter()
        expansion = GenFunc.product(
            self.polynomials(query, representative, polycache, engine),
            decimals=self.decimals,
            prune_floor=self.prune_floor,
            max_terms=self.max_terms,
        )
        registry = self.registry
        registry.counter("estimator.expansions").inc()
        registry.histogram(
            "estimator.expansion.seconds", buckets=LATENCY_BUCKETS
        ).observe(time.perf_counter() - start)
        registry.histogram(
            "estimator.genfunc.terms", buckets=SIZE_BUCKETS
        ).observe(expansion.n_terms)
        registry.histogram(
            "estimator.pruned.mass", buckets=MASS_BUCKETS
        ).observe(expansion.pruned_mass)
        return expansion

    def estimate(
        self,
        query: Query,
        representative: DatabaseRepresentative,
        threshold: float,
    ) -> Usefulness:
        expansion = self.expand(query, representative)
        return Usefulness(
            nodoc=expansion.est_nodoc(threshold, representative.n_documents),
            avgsim=expansion.est_avgsim(threshold),
        )

    def estimate_many(
        self,
        query: Query,
        representative: DatabaseRepresentative,
        thresholds: Sequence[float],
    ) -> List[Usefulness]:
        """One expansion answers every threshold.

        All tails are read from the expansion's single cumulative-sum pass
        (:meth:`GenFunc.tail_profile`) instead of re-running a
        ``searchsorted`` + slice sum per threshold; the values are
        bit-identical to per-threshold :meth:`estimate` calls.
        """
        expansion = self.expand(query, representative)
        n = representative.n_documents
        mass, moment = expansion.tail_profile(thresholds)
        return [
            Usefulness(nodoc=n * m, avgsim=(mo / m if m > 0.0 else 0.0))
            for m, mo in zip(mass.tolist(), moment.tolist())
        ]

    def explain(
        self,
        query: Query,
        representative: DatabaseRepresentative,
        threshold: float,
    ) -> EstimateExplanation:
        """A per-term, inspectable account of one estimate.

        Useful when an engine is selected (or skipped) unexpectedly: the
        explanation shows which terms the representative matched, each
        term's maximum possible contribution, the expansion size, and where
        the probability mass sits relative to the threshold.
        """
        polys = self.polynomials(query, representative)
        poly_iter = iter(polys)
        contributions = []
        for term, u in query.normalized_items():
            stats = representative.get(term)
            matched = stats is not None and stats.probability > 0.0
            if matched:
                exponents, __ = next(poly_iter)
                contributions.append(
                    TermContribution(
                        term=term,
                        query_weight=u,
                        matched=True,
                        polynomial_size=int(len(exponents)),
                        max_exponent=float(np.max(exponents)),
                        occurrence_probability=stats.probability,
                    )
                )
            else:
                contributions.append(
                    TermContribution(
                        term=term,
                        query_weight=u,
                        matched=False,
                        polynomial_size=0,
                        max_exponent=0.0,
                        occurrence_probability=0.0,
                    )
                )
        expansion = GenFunc.product(
            polys,
            decimals=self.decimals,
            prune_floor=self.prune_floor,
            max_terms=self.max_terms,
        )
        estimate = Usefulness(
            nodoc=expansion.est_nodoc(threshold, representative.n_documents),
            avgsim=expansion.est_avgsim(threshold),
        )
        return EstimateExplanation(
            estimate=estimate,
            threshold=threshold,
            terms=contributions,
            expansion_terms=expansion.n_terms,
            tail_mass=expansion.tail_mass(threshold),
            pruned_mass=expansion.pruned_mass,
        )


_REGISTRY: Dict[str, Callable[[], UsefulnessEstimator]] = {}


def register_estimator(name: str, factory: Callable[[], UsefulnessEstimator]) -> None:
    """Register an estimator factory under a short name."""
    if name in _REGISTRY:
        raise ValueError(f"estimator {name!r} already registered")
    _REGISTRY[name] = factory


def get_estimator(name: str) -> UsefulnessEstimator:
    """Instantiate a registered estimator ('subrange', 'basic', 'prev',
    'gloss-hc', 'gloss-disjoint', 'subrange-triplet', ...)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown estimator {name!r}; known: {known}")
    return factory()
