"""The gGlOSS estimators (Gravano & Garcia-Molina) — the paper's baselines.

gGlOSS summarizes a database by ``(df_j, W_j)`` per term: document frequency
and total weight.  Both quantities are derivable from our representative
(``df = p * n``, ``W = df * w``), so the baselines run on the same metadata.

*High-correlation assumption*: if term ``j`` appears in at least as many
documents as term ``k``, every document containing ``k`` also contains
``j``.  Sorting the query terms by ascending df then yields nested "bands"
of documents: the ``df_(1)`` most-covered documents contain all query terms,
the next ``df_(2) - df_(1)`` contain all but the rarest, and so on.  Each
band's similarity is the sum of its terms' ``u * avg_weight`` contributions.

*Disjoint assumption*: the document sets of distinct query terms are
disjoint, so each document matches exactly one term and has similarity
``u_j * avg_weight_j``.

NoDoc sums the band (resp. per-term) populations whose similarity exceeds
``T``; AvgSim averages those bands' similarities weighted by population.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.base import UsefulnessEstimator, register_estimator
from repro.core.types import Usefulness
from repro.corpus.query import Query
from repro.representatives.representative import DatabaseRepresentative

__all__ = ["GlossHighCorrelationEstimator", "GlossDisjointEstimator"]


def _matched_terms(
    query: Query, representative: DatabaseRepresentative
) -> List[Tuple[float, float, float]]:
    """Per matching query term: ``(df, u, avg_weight)``."""
    out = []
    n = representative.n_documents
    for term, u in query.normalized_items():
        stats = representative.get(term)
        if stats is not None and stats.probability > 0.0:
            out.append((stats.probability * n, u, stats.mean))
    return out


def _usefulness_from_groups(
    groups: List[Tuple[float, float]], threshold: float
) -> Usefulness:
    """Aggregate ``(population, similarity)`` groups above ``threshold``."""
    nodoc = 0.0
    sim_sum = 0.0
    for population, similarity in groups:
        if similarity > threshold and population > 0.0:
            nodoc += population
            sim_sum += population * similarity
    if nodoc <= 0.0:
        return Usefulness.zero()
    return Usefulness(nodoc=nodoc, avgsim=sim_sum / nodoc)


class GlossHighCorrelationEstimator(UsefulnessEstimator):
    """gGlOSS under the high-correlation assumption."""

    name = "gloss-hc"
    label = "high-correlation"
    #: Bands are built from the query terms' own (df, mean) plus ``n`` —
    #: term-local, so precise per-term estimate-cache eviction is sound.
    term_local = True

    def bands(
        self, query: Query, representative: DatabaseRepresentative
    ) -> List[Tuple[float, float]]:
        """The nested document bands as ``(population, similarity)`` pairs."""
        terms = sorted(_matched_terms(query, representative))  # ascending df
        bands = []
        previous_df = 0.0
        # Band l (1-based) spans documents covered by terms l..r: population
        # df_(l) - df_(l-1); similarity = sum of contributions of terms l..r.
        suffix_sim = [0.0] * (len(terms) + 1)
        for i in range(len(terms) - 1, -1, -1):
            df, u, avg_w = terms[i]
            suffix_sim[i] = suffix_sim[i + 1] + u * avg_w
        for i, (df, u, avg_w) in enumerate(terms):
            population = df - previous_df
            if population > 0.0:
                bands.append((population, suffix_sim[i]))
            previous_df = df
        return bands

    def estimate(
        self,
        query: Query,
        representative: DatabaseRepresentative,
        threshold: float,
    ) -> Usefulness:
        return _usefulness_from_groups(
            self.bands(query, representative), threshold
        )


class GlossDisjointEstimator(UsefulnessEstimator):
    """gGlOSS under the disjoint assumption.

    The paper omits its tables because it underperforms the
    high-correlation variant; it is provided for completeness and for the
    ablation benchmarks.
    """

    name = "gloss-disjoint"
    label = "disjoint"
    #: Same per-term inputs as the high-correlation variant — term-local.
    term_local = True

    def groups(
        self, query: Query, representative: DatabaseRepresentative
    ) -> List[Tuple[float, float]]:
        """Per-term ``(population, similarity)`` groups."""
        return [
            (df, u * avg_w)
            for df, u, avg_w in _matched_terms(query, representative)
        ]

    def estimate(
        self,
        query: Query,
        representative: DatabaseRepresentative,
        threshold: float,
    ) -> Usefulness:
        return _usefulness_from_groups(
            self.groups(query, representative), threshold
        )


register_estimator("gloss-hc", GlossHighCorrelationEstimator)
register_estimator("gloss-disjoint", GlossDisjointEstimator)
