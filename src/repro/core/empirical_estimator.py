"""Subrange estimation from exact empirical percentiles.

The counterpart of :class:`~repro.core.subrange_estimator.SubrangeEstimator`
that consumes an :class:`~repro.representatives.empirical.EmpiricalRepresentative`
— the subrange medians are the term's true weight percentiles rather than
normal-approximated ``w + c * sigma`` points.  Used by the ablation
benchmarks to measure what the paper's normal approximation costs.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.base import ExpansionEstimator, register_estimator
from repro.representatives.empirical import EmpiricalRepresentative

__all__ = ["EmpiricalSubrangeEstimator"]


class EmpiricalSubrangeEstimator(ExpansionEstimator):
    """Generating-function estimator over stored empirical medians."""

    name = "subrange-empirical"
    label = "subrange (empirical medians)"
    #: The context carries the representative-level percentile scheme, and
    #: empirical representatives are not delta-applicable anyway — keep the
    #: conservative whole-engine eviction.
    term_local = False

    def _polynomial_context(self, representative: EmpiricalRepresentative):
        """The scheme, its masses, and ``n`` — shared by every term."""
        scheme = representative.scheme
        return (scheme, np.asarray(scheme.masses), representative.n_documents)

    def term_polynomial(
        self, u: float, stats, context
    ) -> Tuple[np.ndarray, np.ndarray]:
        scheme, masses, n = context
        p = stats.probability
        exponents: List[float] = []
        coeffs: List[float] = []
        remaining = p
        if scheme.include_max and n > 0:
            p_max = min(1.0 / n, p)
            exponents.append(u * stats.max_weight)
            coeffs.append(p_max)
            remaining = p - p_max
        if remaining > 0.0:
            medians = np.minimum(np.asarray(stats.medians), stats.max_weight)
            exponents.extend((u * medians).tolist())
            coeffs.extend((remaining * masses).tolist())
        exponents.append(0.0)
        coeffs.append(1.0 - p)
        return np.asarray(exponents), np.asarray(coeffs)


register_estimator("subrange-empirical", EmpiricalSubrangeEstimator)
