"""Reconstruction of the authors' previous method (Meng et al., VLDB 1998).

The paper describes its second baseline only in outline: "similar to the
basic method … except that it also utilizes the standard deviation of the
weights of each term … to dynamically adjust the average weight and
probability of each query term according to the threshold used for the
query."  The full VLDB'98 algorithm is not restated, so this module
implements a faithful-in-spirit reconstruction (documented in DESIGN.md §3):

1. The threshold ``T`` is apportioned to the query terms in proportion to
   their expected similarity contribution ``u_i * w_i``, giving a per-term
   weight cutoff ``lambda_i / u_i``.
2. Under the normal assumption ``N(w_i, sigma_i^2)``, the term's probability
   shrinks to the mass above the cutoff and its weight rises to the
   conditional mean above the cutoff — the threshold-dependent adjustment.
3. The basic generating function is expanded with the adjusted pairs.

The reconstruction reproduces the qualitative behaviour the paper reports
for this baseline: materially better than the high-correlation estimator,
materially worse than the subrange method.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.base import UsefulnessEstimator, register_estimator
from repro.core.genfunc import GenFunc
from repro.core.types import Usefulness
from repro.corpus.query import Query
from repro.representatives.representative import DatabaseRepresentative
from repro.stats.normal import (
    truncated_normal_mean_above,
    truncated_normal_tail_mass,
)

__all__ = ["PreviousMethodEstimator"]


class PreviousMethodEstimator(UsefulnessEstimator):
    """Threshold-adjusted basic method (VLDB'98 reconstruction).

    Args:
        decimals: Exponent rounding during expansion.
        adjustment_strength: Fraction of the apportioned cutoff actually
            applied (1.0 = full reconstruction; 0.0 degenerates to the basic
            method).  Exposed for ablation studies.
        max_terms: Adaptive expansion budget passed through to
            :meth:`GenFunc.product` (None disables it).
    """

    name = "prev"
    label = "our prev method"

    def __init__(
        self,
        decimals: int = 8,
        adjustment_strength: float = 1.0,
        max_terms: "int | None" = None,
    ):
        if not 0.0 <= adjustment_strength <= 1.0:
            raise ValueError(
                f"adjustment_strength must be in [0, 1], got {adjustment_strength!r}"
            )
        if max_terms is not None and max_terms < 1:
            raise ValueError(f"max_terms must be >= 1, got {max_terms!r}")
        self.decimals = decimals
        self.adjustment_strength = adjustment_strength
        self.max_terms = max_terms

    def adjusted_pairs(
        self,
        query: Query,
        representative: DatabaseRepresentative,
        threshold: float,
    ) -> List[Tuple[float, float, float]]:
        """Per matching term: ``(u, adjusted_p, adjusted_w)``."""
        matched = []
        for term, u in query.normalized_items():
            stats = representative.get(term)
            if stats is not None and stats.probability > 0.0:
                matched.append((u, stats))
        if not matched:
            return []
        contributions = np.array([u * s.mean for u, s in matched])
        total = contributions.sum()
        pairs = []
        for (u, stats), contribution in zip(matched, contributions):
            if total > 0.0 and threshold > 0.0:
                share = contribution / total
                cutoff = self.adjustment_strength * threshold * share / u
            else:
                cutoff = 0.0
            if cutoff <= 0.0:
                # No part of the threshold falls on this term: the method
                # degenerates to the basic (p, w) pair, by design.
                adjusted_p = stats.probability
                adjusted_w = stats.mean
            else:
                tail = truncated_normal_tail_mass(cutoff, stats.mean, stats.std)
                adjusted_p = stats.probability * tail
                if tail > 0.0:
                    adjusted_w = truncated_normal_mean_above(
                        cutoff, stats.mean, stats.std
                    )
                else:
                    adjusted_w = 0.0
            pairs.append((u, adjusted_p, adjusted_w))
        return pairs

    def estimate(
        self,
        query: Query,
        representative: DatabaseRepresentative,
        threshold: float,
    ) -> Usefulness:
        polynomials = []
        for u, p, w in self.adjusted_pairs(query, representative, threshold):
            if p <= 0.0:
                continue
            polynomials.append(
                (np.array([u * w, 0.0]), np.array([p, 1.0 - p]))
            )
        expansion = GenFunc.product(
            polynomials, decimals=self.decimals, max_terms=self.max_terms
        )
        return Usefulness(
            nodoc=expansion.est_nodoc(threshold, representative.n_documents),
            avgsim=expansion.est_avgsim(threshold),
        )

    def estimate_many(
        self,
        query: Query,
        representative: DatabaseRepresentative,
        thresholds: Sequence[float],
    ) -> List[Usefulness]:
        """Per-threshold expansion — this method is threshold-dependent by
        construction, unlike the expansion estimators."""
        return [self.estimate(query, representative, t) for t in thresholds]


register_estimator("prev", PreviousMethodEstimator)
