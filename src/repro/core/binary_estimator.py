"""The binary-and-independent baseline (Yu, Luk & Siu, TODS 1978).

The paper's related work recalls the earliest estimator family: documents
as *binary* vectors with independent terms ([18]), later extended to
dependent terms ([14]), and dismisses it because "a substantial amount of
information will be lost when documents are represented by binary vectors."
This module implements the binary-independent case inside our framework so
that the information-loss claim is measurable.

Under the binary model the only per-term statistic is the occurrence
probability ``p``; the generating function is a product of
``p * X^u + (1 - p)`` factors, whose expansion gives the distribution of
the *number of weighted term matches*.  To place the resulting scores on
the similarity scale the evaluation thresholds live on, every present term
is assumed to contribute one database-global constant weight — the mean of
all terms' mean normalized weights — which is precisely the information a
binary representation cannot distinguish per term.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.base import ExpansionEstimator, register_estimator
from repro.corpus.query import Query
from repro.representatives.representative import DatabaseRepresentative

__all__ = ["BinaryIndependenceEstimator"]


class BinaryIndependenceEstimator(ExpansionEstimator):
    """Occurrence-probability-only estimator over binary document vectors.

    Args:
        global_weight: The single per-term contribution assumed for every
            present term.  When None (default) it is derived per database
            as the mean of the representative's per-term mean weights —
            the best single constant available to a binary model.
    """

    name = "binary-independence"
    label = "binary independent"
    #: The expansion context reduces over *every* term's mean weight, so a
    #: one-term delta can shift every cached factor — per-term cache
    #: invalidation is unsound and the broker evicts the whole engine.
    term_local = False

    def __init__(
        self,
        global_weight: Optional[float] = None,
        decimals: int = 8,
        prune_floor: float = 0.0,
        max_terms: Optional[int] = None,
    ):
        super().__init__(
            decimals=decimals, prune_floor=prune_floor, max_terms=max_terms
        )
        if global_weight is not None and global_weight < 0.0:
            raise ValueError(
                f"global_weight must be >= 0, got {global_weight!r}"
            )
        self.global_weight = global_weight

    def _database_weight(self, representative: DatabaseRepresentative) -> float:
        if self.global_weight is not None:
            return self.global_weight
        means = [stats.mean for __, stats in representative.items()]
        return float(np.mean(means)) if means else 0.0

    def _polynomial_context(self, representative: DatabaseRepresentative):
        """The database-global constant weight, derived once per query."""
        return self._database_weight(representative)

    def polynomial_config(self) -> Tuple:
        return (type(self).__name__, self.global_weight)

    def term_polynomial(
        self, u: float, stats, context
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``p * X^(u * global_weight) + (1-p)`` — occurrence only."""
        p = stats.probability
        return np.array([u * context, 0.0]), np.array([p, 1.0 - p])


register_estimator("binary-independence", BinaryIndependenceEstimator)
