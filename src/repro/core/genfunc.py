"""Sparse probability generating functions with real exponents.

Expression (3) of the paper is a product of per-term polynomials in a dummy
variable ``X`` whose exponents are similarity contributions and whose
coefficients are probabilities.  After full expansion (Expression (5)),

* the coefficient of ``X^s`` is the probability that a random document of
  the database has similarity ``s`` with the query (Proposition 1);
* ``est_NoDoc(T) = n * sum of coefficients with exponent > T`` (Eq. 6);
* ``est_AvgSim(T)`` is the coefficient-weighted mean of those exponents.

Exponents are arbitrary reals (products of query and document weights), so a
:class:`GenFunc` stores parallel sorted numpy arrays.  Each multiplication
rounds exponents to a configurable number of decimals before merging —
otherwise floating-point noise would keep equal similarities apart and the
term count would grow multiplicatively — and can prune coefficients below a
floor.  Pruned probability mass is accumulated in :attr:`GenFunc.pruned_mass`
so accuracy loss is observable, never silent.

Tail read-outs (``tail_mass``, ``tail_first_moment`` and the vectorized
:meth:`GenFunc.tail_profile`) all read from one lazily built pair of suffix
cumulative-sum arrays, so answering every threshold of a grid costs one
``searchsorted`` plus array indexing — and the single-threshold and
many-threshold paths return bit-identical values by construction.

:meth:`GenFunc.product` optionally takes an *adaptive expansion budget*
(``max_terms``): whenever an intermediate product grows past the cap, the
prune floor is tightened geometrically until the expansion fits, with the
dropped probability recorded in :attr:`GenFunc.pruned_mass` — long queries
stay bounded instead of growing multiplicatively, and the accuracy cost
stays observable.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["GenFunc"]

_DEFAULT_DECIMALS = 8

#: Where the adaptive budget starts tightening when the configured prune
#: floor is zero; small enough that the first rounds only shed float dust.
_BUDGET_FLOOR_START = 1e-15

#: Geometric growth factor of the adaptive budget's prune floor.
_BUDGET_FLOOR_GROWTH = 8.0


class GenFunc:
    """An expanded generating function: sum of ``coeff * X^exponent`` terms.

    Invariants: ``exponents`` is strictly ascending, ``coeffs`` is positive,
    and ``coeffs.sum() + pruned_mass ~= 1`` once built from a full product of
    per-term probability polynomials.
    """

    __slots__ = ("exponents", "coeffs", "pruned_mass", "_tails")

    def __init__(self, exponents, coeffs, pruned_mass: float = 0.0):
        exponents = np.asarray(exponents, dtype=float)
        coeffs = np.asarray(coeffs, dtype=float)
        if exponents.ndim != 1 or coeffs.ndim != 1:
            raise ValueError("exponents and coeffs must be 1-D")
        if exponents.shape != coeffs.shape:
            raise ValueError("exponents and coeffs must have equal length")
        if exponents.size > 1 and not np.all(np.diff(exponents) > 0):
            raise ValueError("exponents must be strictly ascending")
        if np.any(coeffs < 0):
            raise ValueError("coefficients must be non-negative")
        self.exponents = exponents
        self.coeffs = coeffs
        self.pruned_mass = pruned_mass
        self._tails = None

    # -- constructors ----------------------------------------------------------

    @classmethod
    def one(cls) -> "GenFunc":
        """The multiplicative identity ``1 * X^0``."""
        return cls(np.zeros(1), np.ones(1))

    @classmethod
    def from_terms(
        cls, exponents: Sequence[float], coeffs: Sequence[float]
    ) -> "GenFunc":
        """Build from unsorted, possibly duplicated ``(exponent, coeff)``
        terms, merging duplicates by summing coefficients."""
        exponents = np.asarray(exponents, dtype=float)
        coeffs = np.asarray(coeffs, dtype=float)
        merged_exp, inverse = np.unique(exponents, return_inverse=True)
        merged_coef = np.bincount(inverse, weights=coeffs, minlength=merged_exp.size)
        return cls(merged_exp, merged_coef)

    # -- properties ----------------------------------------------------------------

    @property
    def n_terms(self) -> int:
        return int(self.exponents.size)

    def total_mass(self) -> float:
        """Sum of all coefficients (excluding pruned mass)."""
        return float(self.coeffs.sum())

    def max_exponent(self) -> float:
        """Largest exponent with non-zero coefficient (-inf when empty)."""
        return float(self.exponents[-1]) if self.exponents.size else float("-inf")

    # -- the core operation ------------------------------------------------------------

    def multiplied(
        self,
        factor_exponents: Sequence[float],
        factor_coeffs: Sequence[float],
        decimals: int = _DEFAULT_DECIMALS,
        prune_floor: float = 0.0,
    ) -> "GenFunc":
        """Multiply by a per-term polynomial and re-merge.

        Args:
            factor_exponents: Exponents of the factor polynomial (need not be
                sorted or distinct, but must be non-empty).
            factor_coeffs: Coefficients, parallel to ``factor_exponents``.
            decimals: Exponents of the product are rounded to this many
                decimals before merging.
            prune_floor: Coefficients at or below this value are dropped and
                their mass added to :attr:`pruned_mass`.

        Returns:
            A new :class:`GenFunc`; the receiver is unchanged.
        """
        fexp = np.asarray(factor_exponents, dtype=float)
        fcoef = np.asarray(factor_coeffs, dtype=float)
        if fexp.shape != fcoef.shape or fexp.ndim != 1:
            raise ValueError("factor arrays must be parallel 1-D arrays")
        if fexp.size == 0:
            # The zero polynomial would annihilate the product while the
            # carried-forward pruned_mass kept claiming probability — the
            # ``mass + pruned_mass ~= 1`` invariant would silently break.
            # A per-term probability polynomial is never empty: it always
            # carries at least the (0, 1-p) miss term.
            raise ValueError(
                "factor polynomial must be non-empty (a per-term polynomial "
                "always carries its (0, 1-p) term)"
            )
        product_exp = np.round(
            (self.exponents[:, None] + fexp[None, :]).ravel(), decimals
        )
        product_coef = (self.coeffs[:, None] * fcoef[None, :]).ravel()
        merged_exp, inverse = np.unique(product_exp, return_inverse=True)
        merged_coef = np.bincount(
            inverse, weights=product_coef, minlength=merged_exp.size
        )
        pruned = self.pruned_mass
        if prune_floor > 0.0 and merged_exp.size:
            keep = merged_coef > prune_floor
            pruned += float(merged_coef[~keep].sum())
            merged_exp = merged_exp[keep]
            merged_coef = merged_coef[keep]
        return GenFunc(merged_exp, merged_coef, pruned)

    def budgeted(self, max_terms: int, floor_start: float = 0.0) -> "GenFunc":
        """Shrink to at most ``max_terms`` terms by tightening the prune floor.

        The floor starts at ``max(floor_start, 1e-15)`` and grows
        geometrically until the expansion fits; every dropped coefficient is
        added to :attr:`pruned_mass`, so no probability is ever lost
        unaccounted.  If the floor ever overshoots the whole coefficient
        profile (all coefficients equal, say), the ``max_terms`` heaviest
        terms are kept directly instead of annihilating the product.

        Returns:
            ``self`` when already within budget; otherwise a new
            :class:`GenFunc`.
        """
        if max_terms < 1:
            raise ValueError(f"max_terms must be >= 1, got {max_terms!r}")
        if self.n_terms <= max_terms:
            return self
        floor = max(floor_start, _BUDGET_FLOOR_START)
        exponents, coeffs = self.exponents, self.coeffs
        pruned = self.pruned_mass
        while exponents.size > max_terms:
            keep = coeffs > floor
            floor *= _BUDGET_FLOOR_GROWTH
            if keep.all():
                continue
            if not keep.any():
                # The floor skipped past every coefficient at once: fall
                # back to keeping the heaviest max_terms directly.
                order = np.argsort(coeffs, kind="stable")
                keep = np.zeros(coeffs.size, dtype=bool)
                keep[order[-max_terms:]] = True
            pruned += float(coeffs[~keep].sum())
            exponents = exponents[keep]
            coeffs = coeffs[keep]
        return GenFunc(exponents, coeffs, pruned)

    @classmethod
    def product(
        cls,
        polynomials: Sequence[Tuple[Sequence[float], Sequence[float]]],
        decimals: int = _DEFAULT_DECIMALS,
        prune_floor: float = 0.0,
        max_terms: "int | None" = None,
    ) -> "GenFunc":
        """Expand a full product of per-term polynomials (Expression (3)).

        Args:
            polynomials: The per-term ``(exponents, coeffs)`` factors.
            decimals / prune_floor: See :meth:`multiplied`.
            max_terms: Adaptive expansion budget — after each factor, an
                intermediate product larger than this is shrunk via
                :meth:`budgeted`.  ``None`` (the default) disables the
                budget, keeping the expansion exact up to ``prune_floor``.
        """
        result = cls.one()
        for exponents, coeffs in polynomials:
            result = result.multiplied(
                exponents, coeffs, decimals=decimals, prune_floor=prune_floor
            )
            if max_terms is not None and result.n_terms > max_terms:
                result = result.budgeted(max_terms, floor_start=prune_floor)
        return result

    # -- usefulness read-out -------------------------------------------------------------

    def _tail_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Suffix cumulative sums of coefficients and first moments.

        Built lazily on first read-out and cached (instances are immutable
        once constructed), so a whole threshold grid is answered from one
        cumulative-sum pass.  Index ``i`` holds the sum over terms ``i..n``;
        index ``n`` is 0 — the empty tail.
        """
        if self._tails is None:
            mass = np.zeros(self.coeffs.size + 1)
            moment = np.zeros(self.coeffs.size + 1)
            if self.coeffs.size:
                mass[:-1] = np.cumsum(self.coeffs[::-1])[::-1]
                moment[:-1] = np.cumsum(
                    (self.coeffs * self.exponents)[::-1]
                )[::-1]
            self._tails = (mass, moment)
        return self._tails

    def tail_mass(self, threshold: float) -> float:
        """Probability that a document's similarity exceeds ``threshold``."""
        start = int(np.searchsorted(self.exponents, threshold, side="right"))
        return float(self._tail_arrays()[0][start])

    def tail_first_moment(self, threshold: float) -> float:
        """Expected similarity restricted to similarities above ``threshold``
        (i.e. sum of ``coeff * exponent`` over the tail)."""
        start = int(np.searchsorted(self.exponents, threshold, side="right"))
        return float(self._tail_arrays()[1][start])

    def tail_profile(
        self, thresholds: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Tail mass and tail first moment for a whole threshold grid.

        Thresholds are sorted once, located with a single vectorized
        ``searchsorted``, and every tail is read off the shared suffix
        cumulative-sum arrays — so the values are bit-identical to calling
        :meth:`tail_mass` / :meth:`tail_first_moment` per threshold.

        Returns:
            ``(mass, moment)`` arrays parallel to ``thresholds``.
        """
        grid = np.asarray(thresholds, dtype=float)
        order = np.argsort(grid, kind="stable")
        starts = np.empty(grid.size, dtype=np.intp)
        starts[order] = np.searchsorted(
            self.exponents, grid[order], side="right"
        )
        mass, moment = self._tail_arrays()
        return mass[starts], moment[starts]

    def est_nodoc(self, threshold: float, n_documents: int) -> float:
        """Equation (6): expected number of documents above ``threshold``."""
        return n_documents * self.tail_mass(threshold)

    def est_avgsim(self, threshold: float) -> float:
        """Expected average similarity of the documents above ``threshold``;
        0 when the tail carries no probability mass."""
        mass = self.tail_mass(threshold)
        if mass <= 0.0:
            return 0.0
        return self.tail_first_moment(threshold) / mass

    def __repr__(self) -> str:
        return (
            f"GenFunc(terms={self.n_terms}, mass={self.total_mass():.6f}, "
            f"pruned={self.pruned_mass:.2e})"
        )
