"""Sparse probability generating functions with real exponents.

Expression (3) of the paper is a product of per-term polynomials in a dummy
variable ``X`` whose exponents are similarity contributions and whose
coefficients are probabilities.  After full expansion (Expression (5)),

* the coefficient of ``X^s`` is the probability that a random document of
  the database has similarity ``s`` with the query (Proposition 1);
* ``est_NoDoc(T) = n * sum of coefficients with exponent > T`` (Eq. 6);
* ``est_AvgSim(T)`` is the coefficient-weighted mean of those exponents.

Exponents are arbitrary reals (products of query and document weights), so a
:class:`GenFunc` stores parallel sorted numpy arrays.  Each multiplication
rounds exponents to a configurable number of decimals before merging —
otherwise floating-point noise would keep equal similarities apart and the
term count would grow multiplicatively — and can prune coefficients below a
floor.  Pruned probability mass is accumulated in :attr:`GenFunc.pruned_mass`
so accuracy loss is observable, never silent.

Tail read-outs (``tail_mass``, ``tail_first_moment`` and the vectorized
:meth:`GenFunc.tail_profile`) all read from one lazily built pair of suffix
cumulative-sum arrays, so answering every threshold of a grid costs one
``searchsorted`` plus array indexing — and the single-threshold and
many-threshold paths return bit-identical values by construction.

:meth:`GenFunc.product` optionally takes an *adaptive expansion budget*
(``max_terms``): whenever an intermediate product grows past the cap, the
prune floor is tightened geometrically until the expansion fits, with the
dropped probability recorded in :attr:`GenFunc.pruned_mass` — long queries
stay bounded instead of growing multiplicatively, and the accuracy cost
stays observable.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = ["BatchedGenFunc", "GenFunc"]

_DEFAULT_DECIMALS = 8

#: Where the adaptive budget starts tightening when the configured prune
#: floor is zero; small enough that the first rounds only shed float dust.
_BUDGET_FLOOR_START = 1e-15

#: Geometric growth factor of the adaptive budget's prune floor.
_BUDGET_FLOOR_GROWTH = 8.0

#: Batched kernels partition rows into power-of-two width buckets (see
#: BatchedGenFunc); rows at or below 2**_BUCKET_MIN_EXP wide share one
#: bucket — at that size numpy per-call overhead outweighs padding waste.
_BUCKET_MIN_EXP = 4

#: Width buckets holding at most this many rows run the scalar merge
#: pipeline row by row instead of the padded batch kernel: for a
#: near-empty bucket (typically one very wide outlier engine) the plain
#: round->unique->bincount sequence is fewer array passes.
_ROWWISE_BLOCK_ROWS = 4


class GenFunc:
    """An expanded generating function: sum of ``coeff * X^exponent`` terms.

    Invariants: ``exponents`` is strictly ascending, ``coeffs`` is positive,
    and ``coeffs.sum() + pruned_mass ~= 1`` once built from a full product of
    per-term probability polynomials.
    """

    __slots__ = ("exponents", "coeffs", "pruned_mass", "_tails")

    def __init__(self, exponents, coeffs, pruned_mass: float = 0.0):
        exponents = np.asarray(exponents, dtype=float)
        coeffs = np.asarray(coeffs, dtype=float)
        if exponents.ndim != 1 or coeffs.ndim != 1:
            raise ValueError("exponents and coeffs must be 1-D")
        if exponents.shape != coeffs.shape:
            raise ValueError("exponents and coeffs must have equal length")
        if exponents.size > 1 and not np.all(np.diff(exponents) > 0):
            raise ValueError("exponents must be strictly ascending")
        if np.any(coeffs < 0):
            raise ValueError("coefficients must be non-negative")
        self.exponents = exponents
        self.coeffs = coeffs
        self.pruned_mass = pruned_mass
        self._tails = None

    # -- constructors ----------------------------------------------------------

    @classmethod
    def one(cls) -> "GenFunc":
        """The multiplicative identity ``1 * X^0``."""
        return cls(np.zeros(1), np.ones(1))

    @classmethod
    def from_terms(
        cls, exponents: Sequence[float], coeffs: Sequence[float]
    ) -> "GenFunc":
        """Build from unsorted, possibly duplicated ``(exponent, coeff)``
        terms, merging duplicates by summing coefficients."""
        exponents = np.asarray(exponents, dtype=float)
        coeffs = np.asarray(coeffs, dtype=float)
        merged_exp, inverse = np.unique(exponents, return_inverse=True)
        merged_coef = np.bincount(inverse, weights=coeffs, minlength=merged_exp.size)
        return cls(merged_exp, merged_coef)

    # -- properties ----------------------------------------------------------------

    @property
    def n_terms(self) -> int:
        return int(self.exponents.size)

    def total_mass(self) -> float:
        """Sum of all coefficients (excluding pruned mass)."""
        return float(self.coeffs.sum())

    def max_exponent(self) -> float:
        """Largest exponent with non-zero coefficient (-inf when empty)."""
        return float(self.exponents[-1]) if self.exponents.size else float("-inf")

    # -- the core operation ------------------------------------------------------------

    def multiplied(
        self,
        factor_exponents: Sequence[float],
        factor_coeffs: Sequence[float],
        decimals: int = _DEFAULT_DECIMALS,
        prune_floor: float = 0.0,
    ) -> "GenFunc":
        """Multiply by a per-term polynomial and re-merge.

        Args:
            factor_exponents: Exponents of the factor polynomial (need not be
                sorted or distinct, but must be non-empty).
            factor_coeffs: Coefficients, parallel to ``factor_exponents``.
            decimals: Exponents of the product are rounded to this many
                decimals before merging.
            prune_floor: Coefficients at or below this value are dropped and
                their mass added to :attr:`pruned_mass`.

        Returns:
            A new :class:`GenFunc`; the receiver is unchanged.
        """
        fexp = np.asarray(factor_exponents, dtype=float)
        fcoef = np.asarray(factor_coeffs, dtype=float)
        if fexp.shape != fcoef.shape or fexp.ndim != 1:
            raise ValueError("factor arrays must be parallel 1-D arrays")
        if fexp.size == 0:
            # The zero polynomial would annihilate the product while the
            # carried-forward pruned_mass kept claiming probability — the
            # ``mass + pruned_mass ~= 1`` invariant would silently break.
            # A per-term probability polynomial is never empty: it always
            # carries at least the (0, 1-p) miss term.
            raise ValueError(
                "factor polynomial must be non-empty (a per-term polynomial "
                "always carries its (0, 1-p) term)"
            )
        # ``+ 0.0`` canonicalizes signed zeros (-0.0 -> +0.0) and is the
        # identity on every other finite value.  Without it, a merge group
        # holding both zero bit patterns would keep whichever one the
        # unstable sort left first — the lone case where "group by value"
        # admits more than one representative bit pattern.
        product_exp = (
            np.round((self.exponents[:, None] + fexp[None, :]).ravel(), decimals)
            + 0.0
        )
        product_coef = (self.coeffs[:, None] * fcoef[None, :]).ravel()
        merged_exp, inverse = np.unique(product_exp, return_inverse=True)
        merged_coef = np.bincount(
            inverse, weights=product_coef, minlength=merged_exp.size
        )
        pruned = self.pruned_mass
        if prune_floor > 0.0 and merged_exp.size:
            keep = merged_coef > prune_floor
            pruned += float(merged_coef[~keep].sum())
            merged_exp = merged_exp[keep]
            merged_coef = merged_coef[keep]
        return GenFunc(merged_exp, merged_coef, pruned)

    def budgeted(self, max_terms: int, floor_start: float = 0.0) -> "GenFunc":
        """Shrink to at most ``max_terms`` terms by tightening the prune floor.

        The floor starts at ``max(floor_start, 1e-15)`` and grows
        geometrically until the expansion fits; every dropped coefficient is
        added to :attr:`pruned_mass`, so no probability is ever lost
        unaccounted.  If the floor ever overshoots the whole coefficient
        profile (all coefficients equal, say), the ``max_terms`` heaviest
        terms are kept directly instead of annihilating the product.

        Returns:
            ``self`` when already within budget; otherwise a new
            :class:`GenFunc`.
        """
        if max_terms < 1:
            raise ValueError(f"max_terms must be >= 1, got {max_terms!r}")
        if self.n_terms <= max_terms:
            return self
        floor = max(floor_start, _BUDGET_FLOOR_START)
        exponents, coeffs = self.exponents, self.coeffs
        pruned = self.pruned_mass
        while exponents.size > max_terms:
            keep = coeffs > floor
            floor *= _BUDGET_FLOOR_GROWTH
            if keep.all():
                continue
            if not keep.any():
                # The floor skipped past every coefficient at once: fall
                # back to keeping the heaviest max_terms directly.
                order = np.argsort(coeffs, kind="stable")
                keep = np.zeros(coeffs.size, dtype=bool)
                keep[order[-max_terms:]] = True
            pruned += float(coeffs[~keep].sum())
            exponents = exponents[keep]
            coeffs = coeffs[keep]
        return GenFunc(exponents, coeffs, pruned)

    @classmethod
    def product(
        cls,
        polynomials: Sequence[Tuple[Sequence[float], Sequence[float]]],
        decimals: int = _DEFAULT_DECIMALS,
        prune_floor: float = 0.0,
        max_terms: "int | None" = None,
    ) -> "GenFunc":
        """Expand a full product of per-term polynomials (Expression (3)).

        Args:
            polynomials: The per-term ``(exponents, coeffs)`` factors.
            decimals / prune_floor: See :meth:`multiplied`.
            max_terms: Adaptive expansion budget — after each factor, an
                intermediate product larger than this is shrunk via
                :meth:`budgeted`.  ``None`` (the default) disables the
                budget, keeping the expansion exact up to ``prune_floor``.
        """
        result = cls.one()
        for exponents, coeffs in polynomials:
            result = result.multiplied(
                exponents, coeffs, decimals=decimals, prune_floor=prune_floor
            )
            if max_terms is not None and result.n_terms > max_terms:
                result = result.budgeted(max_terms, floor_start=prune_floor)
        return result

    # -- usefulness read-out -------------------------------------------------------------

    def _tail_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Suffix cumulative sums of coefficients and first moments.

        Built lazily on first read-out and cached (instances are immutable
        once constructed), so a whole threshold grid is answered from one
        cumulative-sum pass.  Index ``i`` holds the sum over terms ``i..n``;
        index ``n`` is 0 — the empty tail.
        """
        if self._tails is None:
            mass = np.zeros(self.coeffs.size + 1)
            moment = np.zeros(self.coeffs.size + 1)
            if self.coeffs.size:
                mass[:-1] = np.cumsum(self.coeffs[::-1])[::-1]
                moment[:-1] = np.cumsum(
                    (self.coeffs * self.exponents)[::-1]
                )[::-1]
            self._tails = (mass, moment)
        return self._tails

    def tail_mass(self, threshold: float) -> float:
        """Probability that a document's similarity exceeds ``threshold``."""
        start = int(np.searchsorted(self.exponents, threshold, side="right"))
        return float(self._tail_arrays()[0][start])

    def tail_first_moment(self, threshold: float) -> float:
        """Expected similarity restricted to similarities above ``threshold``
        (i.e. sum of ``coeff * exponent`` over the tail)."""
        start = int(np.searchsorted(self.exponents, threshold, side="right"))
        return float(self._tail_arrays()[1][start])

    def tail_profile(
        self, thresholds: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Tail mass and tail first moment for a whole threshold grid.

        Thresholds are sorted once, located with a single vectorized
        ``searchsorted``, and every tail is read off the shared suffix
        cumulative-sum arrays — so the values are bit-identical to calling
        :meth:`tail_mass` / :meth:`tail_first_moment` per threshold.

        Returns:
            ``(mass, moment)`` arrays parallel to ``thresholds``.
        """
        grid = np.asarray(thresholds, dtype=float)
        order = np.argsort(grid, kind="stable")
        starts = np.empty(grid.size, dtype=np.intp)
        starts[order] = np.searchsorted(
            self.exponents, grid[order], side="right"
        )
        mass, moment = self._tail_arrays()
        return mass[starts], moment[starts]

    def est_nodoc(self, threshold: float, n_documents: int) -> float:
        """Equation (6): expected number of documents above ``threshold``."""
        return n_documents * self.tail_mass(threshold)

    def est_avgsim(self, threshold: float) -> float:
        """Expected average similarity of the documents above ``threshold``;
        0 when the tail carries no probability mass."""
        mass = self.tail_mass(threshold)
        if mass <= 0.0:
            return 0.0
        return self.tail_first_moment(threshold) / mass

    def __repr__(self) -> str:
        return (
            f"GenFunc(terms={self.n_terms}, mass={self.total_mass():.6f}, "
            f"pruned={self.pruned_mass:.2e})"
        )


class BatchedGenFunc:
    """A ragged batch of generating functions advanced in lock-step.

    Each row is one :class:`GenFunc` state, stored as padded 2-D arrays so
    a whole fleet of expansions moves through one numpy call per query
    term instead of one Python loop per engine.  The contract is
    *bit-identity per row*: every operation replicates the scalar methods'
    float arithmetic operation-for-operation —

    * :meth:`multiply_rows` reproduces :meth:`GenFunc.multiplied`'s
      ``round → unique → bincount`` merge.  Product entries are rounded
      with the same elementwise ``np.round``, grouped by exponent *value*
      (exactly ``np.unique``'s equivalence — no integer-key detour, so
      exponents past ``2**53 / 10**decimals`` and negative ``decimals``
      stay exact), and each group's coefficients are accumulated by
      ``np.bincount`` in the original product order after a stable
      per-row sort — the precise addition sequence the scalar merge runs.
      Pruning drops the same ``coeff <= prune_floor`` groups, and the
      per-row pruned mass is accumulated with ``np.sum`` over the same
      compressed drop array the scalar code sums, so even the pairwise
      summation order matches.
    * :meth:`budget_rows` reproduces :meth:`GenFunc.budgeted`'s
      geometric floor-tightening loop per over-budget row, including the
      keep-heaviest stable-argsort rescue when the floor overshoots.
    * :meth:`tail_profile` reads every row's tails off one pair of suffix
      cumulative sums, with row padding as bit-inert trailing ``+0.0``
      terms — the values :meth:`GenFunc.tail_profile` returns per row.

    Factor exponents must be finite: the padded sort uses ``inf`` as the
    out-of-row sentinel, so rows whose factors carry non-finite exponents
    (or whose rounding would overflow to ``inf``) must be routed through
    the scalar :class:`GenFunc` instead — see
    :func:`repro.core.vectorized.fallback_count`.
    """

    __slots__ = (
        "exponents", "coeffs", "starts", "row_len", "tail", "pruned_mass"
    )

    def __init__(
        self,
        exponents: np.ndarray,
        coeffs: np.ndarray,
        starts: np.ndarray,
        row_len: np.ndarray,
        pruned_mass: np.ndarray,
        tail: Optional[int] = None,
    ):
        self.exponents = exponents
        self.coeffs = coeffs
        self.starts = starts
        self.row_len = row_len
        self.tail = int(exponents.size) if tail is None else tail
        self.pruned_mass = pruned_mass

    @classmethod
    def ones(cls, n_rows: int) -> "BatchedGenFunc":
        """``n_rows`` copies of the multiplicative identity ``1 * X^0``."""
        if n_rows < 0:
            raise ValueError(f"n_rows must be >= 0, got {n_rows!r}")
        # The arena starts with headroom so the first few products append
        # without a compaction pass (see _write_blocks).
        cap = max(64 * n_rows, 1024)
        exponents = np.zeros(cap)
        coeffs = np.zeros(cap)
        coeffs[:n_rows] = 1.0
        return cls(
            exponents=exponents,
            coeffs=coeffs,
            starts=np.arange(n_rows, dtype=np.int64),
            row_len=np.ones(n_rows, dtype=np.int64),
            pruned_mass=np.zeros(n_rows),
            tail=n_rows,
        )

    @property
    def n_rows(self) -> int:
        return int(self.row_len.size)

    def row(self, r: int) -> GenFunc:
        """Row ``r`` as a scalar :class:`GenFunc` (compressed copy)."""
        start = int(self.starts[r])
        length = int(self.row_len[r])
        return GenFunc(
            self.exponents[start : start + length].copy(),
            self.coeffs[start : start + length].copy(),
            float(self.pruned_mass[r]),
        )

    # -- ragged storage ------------------------------------------------------
    #
    # Rows live packed in flat 1-D arrays (CSR-style: `starts` + `row_len`).
    # Expansion widths are heavily skewed in practice — one engine's
    # polynomial can be orders of magnitude wider than the fleet median —
    # so a padded (rows, max_width) block would spend almost all its work
    # on padding.  Kernels instead gather power-of-two width buckets into
    # small padded blocks (padding waste bounded at 2x) and hand back
    # CSR-packed results that append at the arena tail as contiguous
    # slice copies.

    @staticmethod
    def _positions(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
        """Flat positions of the given ragged rows, row-major."""
        total = int(lens.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        first = np.zeros(lens.size + 1, dtype=np.int64)
        np.cumsum(lens, out=first[1:])
        return np.repeat(starts - first[:-1], lens) + np.arange(total)

    def _gather(
        self, rows: np.ndarray, width: int, lens: np.ndarray,
        pad_exp: float = 0.0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The state of ``rows`` as padded ``(len(rows), width)`` blocks
        (``width`` must be ``>= lens.max()``).  Padding coefficients are
        always ``0.0`` (an additive identity); padding *exponents* default
        to ``0.0`` but callers that sort by exponent pass ``np.inf`` so the
        padding self-sorts behind every real entry with no extra mask."""
        span = np.arange(width)
        mask = span[None, :] < lens[:, None]
        idx = np.where(mask, self.starts[rows][:, None] + span[None, :], 0)
        return (
            np.where(mask, self.exponents[idx], pad_exp),
            np.where(mask, self.coeffs[idx], 0.0),
        )

    def _write_blocks(
        self,
        blocks: Sequence[
            Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ],
    ) -> None:
        """Replace the state of each block's rows; other rows untouched.

        ``blocks`` holds ``(rows, exp_flat, coef_flat, len_sub)`` tuples
        with disjoint row sets; the flat arrays are the rows' new values
        CSR-packed row-major.  Each block's rows are *appended* at the
        arena tail and their ``starts`` repointed — the packed values land
        as two contiguous slice copies, untouched rows are never moved,
        and the abandoned segments stay as dead space until the arena runs
        out and :meth:`_compact_arena` repacks the live rows (amortized:
        one compaction per few products, instead of one full rebuild per
        multiply).
        """
        if not blocks:
            return
        total_new = sum(int(len_sub.sum()) for __, __, __, len_sub in blocks)
        if self.tail + total_new > self.exponents.size:
            self._compact_arena(total_new)
        base = self.tail
        for rows, exp_flat, coef_flat, len_sub in blocks:
            bounds = np.zeros(len_sub.size + 1, dtype=np.int64)
            np.cumsum(len_sub, out=bounds[1:])
            total = int(bounds[-1])
            self.exponents[base : base + total] = exp_flat
            self.coeffs[base : base + total] = coef_flat
            self.starts[rows] = base + bounds[:-1]
            self.row_len[rows] = len_sub
            base += total
        self.tail = base

    def _compact_arena(self, incoming: int) -> None:
        """Repack the live rows into a fresh arena sized with headroom for
        ``incoming`` new terms plus a few more products' growth."""
        live = int(self.row_len.sum())
        cap = max(4 * (live + incoming), 1024)
        new_exp = np.empty(cap)
        new_coef = np.empty(cap)
        bounds = np.zeros(self.row_len.size + 1, dtype=np.int64)
        np.cumsum(self.row_len, out=bounds[1:])
        new_starts = bounds[:-1].copy()
        src = self._positions(self.starts, self.row_len)
        new_exp[:live] = self.exponents[src]
        new_coef[:live] = self.coeffs[src]
        self.exponents = new_exp
        self.coeffs = new_coef
        self.starts = new_starts
        self.tail = live

    @staticmethod
    def _compact(
        values_exp: np.ndarray,
        values_coef: np.ndarray,
        keep: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The kept entries of each padded row, CSR-packed row-major
        (2-D boolean extraction preserves within-row order)."""
        new_len = keep.sum(axis=1).astype(np.int64)
        return values_exp[keep], values_coef[keep], new_len

    def multiply_rows(
        self,
        rows: np.ndarray,
        factor_exponents: np.ndarray,
        factor_coeffs: np.ndarray,
        factor_len: Optional[np.ndarray] = None,
        decimals: int = _DEFAULT_DECIMALS,
        prune_floor: float = 0.0,
    ) -> None:
        """Multiply the state of ``rows`` by per-row factor polynomials.

        Args:
            rows: Row indices whose state this factor multiplies (the
                scalar path's "matched" rows; other rows are untouched,
                exactly as :meth:`ExpansionEstimator.polynomials` skips
                unmatched terms).
            factor_exponents / factor_coeffs: ``(len(rows), F)`` arrays;
                row ``i`` holds the factor for ``rows[i]``.
            factor_len: Effective width of each row's factor (entries at
                or past it are padding and ignored); ``None`` means every
                row uses the full width ``F``.
            decimals / prune_floor: As in :meth:`GenFunc.multiplied`.
        """
        rows = np.asarray(rows, dtype=np.intp)
        fexp = np.asarray(factor_exponents, dtype=float)
        fcoef = np.asarray(factor_coeffs, dtype=float)
        if fexp.ndim != 2 or fexp.shape != fcoef.shape or fexp.shape[0] != rows.size:
            raise ValueError(
                "factor arrays must be parallel (len(rows), F) 2-D arrays"
            )
        n_sub, width_f = fexp.shape
        if n_sub == 0:
            return
        if factor_len is None:
            flen = np.full(n_sub, width_f, dtype=np.int64)
        else:
            flen = np.asarray(factor_len, dtype=np.int64)
        if (flen < 1).any():
            raise ValueError(
                "factor polynomial must be non-empty (a per-term polynomial "
                "always carries its (0, 1-p) term)"
            )
        f_valid = np.arange(width_f)[None, :] < flen[:, None]
        if not np.isfinite(np.where(f_valid, fexp, 0.0)).all():
            raise ValueError("batched product requires finite factor exponents")
        # Normalize the padding once, up front: +inf exponents make padded
        # product entries self-sort behind every real entry, and 0.0
        # coefficients make them bit-inert additive identities — so the
        # block kernel needs no validity mask at all.
        fexp = np.where(f_valid, fexp, np.inf)
        fcoef = np.where(f_valid, fcoef, 0.0)
        # Rows are independent, so processing them in power-of-two width
        # buckets changes nothing about the result — it just keeps a
        # handful of very wide rows from inflating every row's padded work.
        # Narrow rows (<= 2**_BUCKET_MIN_EXP wide) share one bucket: at
        # that size per-call overhead outweighs padding waste.
        sub_len = self.row_len[rows]
        bucket = np.maximum(
            np.frexp(np.maximum(sub_len, 1).astype(np.float64))[1],
            _BUCKET_MIN_EXP,
        )
        blocks = []
        if bucket.size and bucket.min() != bucket.max():
            for b in np.unique(bucket):
                sel = np.nonzero(bucket == b)[0]
                block = self._multiply_block(
                    rows[sel], fexp[sel], fcoef[sel], flen[sel],
                    decimals, prune_floor,
                )
                if block is not None:
                    blocks.append(block)
        else:
            block = self._multiply_block(
                rows, fexp, fcoef, flen, decimals, prune_floor
            )
            if block is not None:
                blocks.append(block)
        self._write_blocks(blocks)

    def _multiply_block(
        self,
        rows: np.ndarray,
        fexp: np.ndarray,
        fcoef: np.ndarray,
        flen: np.ndarray,
        decimals: int,
        prune_floor: float,
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """The :meth:`multiply_rows` kernel for one similar-width block;
        returns the block's ``(rows, exp, coef, len)`` result for
        :meth:`_write_blocks` (``None`` when the block is a no-op)."""
        n_sub, width_f = fexp.shape
        sub_len = self.row_len[rows]
        width_s = int(sub_len.max())
        flat = width_s * width_f
        if flat == 0:
            return None  # every row was annihilated; the product stays empty
        if n_sub <= _ROWWISE_BLOCK_ROWS:
            # A near-empty bucket (typically the one very wide outlier
            # engine): the scalar merge pipeline per row is fewer array
            # passes than the padded batch machinery — and is trivially
            # bit-identical, being the very ops GenFunc.multiplied runs.
            return self._multiply_rowwise(
                rows, fexp, fcoef, flen, decimals, prune_floor
            )
        # Padding is pre-normalized (exponent +inf, coefficient 0.0) by
        # multiply_rows and _gather, so the product entries need no
        # validity mask: padded exponents are +inf (inf + finite), padded
        # coefficients are exactly 0.0 (0 * finite or finite * 0).
        state_exp, state_coef = self._gather(
            rows, width_s, sub_len, pad_exp=np.inf
        )
        # Product entries in the scalar ravel order (state-major,
        # factor-minor) — the exact addition sequence np.unique+bincount
        # consumes in GenFunc.multiplied.
        # ``+ 0.0`` canonicalizes signed zeros exactly as GenFunc.multiplied
        # does, so a group holding -0.0 and +0.0 has one bit pattern and
        # the unstable sorts on either path pick the same representative.
        prod_exp = (
            np.round(
                (state_exp[:, :, None] + fexp[:, None, :]).reshape(n_sub, flat),
                decimals,
            )
            + 0.0
        )
        prod_coef = (state_coef[:, :, None] * fcoef[:, None, :]).reshape(
            n_sub, flat
        )
        # Every padded entry is +inf by construction; any FURTHER
        # non-finite entry is a live exponent whose rounding overflowed.
        n_valid = sub_len * flen
        pad_count = n_sub * flat - int(n_valid.sum())
        if int((~np.isfinite(prod_exp)).sum()) != pad_count:
            raise ValueError(
                "rounded exponents overflowed float64; route these rows "
                "through the scalar GenFunc instead"
            )
        # Per-row sort by exponent; padding sorts last behind its +inf.
        # Group membership depends only on the rounded *values*, so the
        # cheaper unstable quicksort finds the same groups a stable sort
        # would.
        order = np.argsort(prod_exp, axis=1)
        perm = np.arange(n_sub, dtype=np.intp)[:, None] * flat + order
        exp_s = prod_exp.ravel()[perm]
        in_valid = np.arange(flat)[None, :] < n_valid[:, None]
        boundary = np.empty((n_sub, flat), dtype=bool)
        boundary[:, 0] = True
        boundary[:, 1:] = exp_s[:, 1:] != exp_s[:, :-1]
        # One flat cumsum assigns globally consecutive group ids: every
        # row's first entry is forced to be a boundary, so groups can never
        # straddle a row edge even when adjacent rows share an exponent.
        gid = np.cumsum(boundary.ravel()) - 1
        # bincount accumulates sequentially in array order, so feeding it
        # the coefficients in their ORIGINAL (state-major) product layout
        # with scattered group ids reproduces the scalar np.unique+bincount
        # addition sequence exactly — each group's partial sums run in
        # original product order regardless of how the sort permuted ties.
        # Padded entries weigh 0.0 — bit-inert additive identities in
        # whatever (padding) group they land.
        gid_orig = np.empty(n_sub * flat, dtype=np.int64)
        gid_orig[perm.ravel()] = gid
        group_coef = np.bincount(
            gid_orig,
            weights=prod_coef.ravel(),
            minlength=int(gid[-1]) + 1,
        )
        # Each row's padding (all +inf) forms at most one trailing group,
        # so the boundaries inside the valid prefix are exactly the real
        # merged entries — and reading them off in row-major order yields
        # the result already CSR-packed, no padded intermediate needed.
        start = boundary & in_valid
        merged_len = start.sum(axis=1).astype(np.int64)
        sel = start.ravel()
        merged_exp = exp_s.ravel()[sel]
        merged_coef = group_coef[gid[sel]]
        if prune_floor > 0.0 and merged_exp.size:
            keep = merged_coef > prune_floor
            if not keep.all():
                bounds = np.zeros(n_sub + 1, dtype=np.int64)
                np.cumsum(merged_len, out=bounds[1:])
                row_of = np.repeat(np.arange(n_sub), merged_len)
                for r in np.unique(row_of[~keep]).tolist():
                    seg = slice(int(bounds[r]), int(bounds[r + 1]))
                    # The segment is exactly the scalar merge's merged_coef
                    # and the drop extraction the scalar's merged_coef[~keep];
                    # np.sum over the same 1-D array reproduces its pairwise
                    # summation bit-for-bit.
                    self.pruned_mass[rows[r]] += float(
                        merged_coef[seg][~keep[seg]].sum()
                    )
                merged_exp = merged_exp[keep]
                merged_coef = merged_coef[keep]
                merged_len = np.bincount(
                    row_of[keep], minlength=n_sub
                ).astype(np.int64)
        return (rows, merged_exp, merged_coef, merged_len)

    def _multiply_rowwise(
        self,
        rows: np.ndarray,
        fexp: np.ndarray,
        fcoef: np.ndarray,
        flen: np.ndarray,
        decimals: int,
        prune_floor: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`GenFunc.multiplied`'s own pipeline, one row at a time —
        bit-identical by construction (it runs the identical operations on
        the identical arrays)."""
        merged = []
        for i in range(rows.size):
            r = int(rows[i])
            length = int(self.row_len[r])
            if length == 0:
                merged.append((np.empty(0), np.empty(0)))
                continue
            start = int(self.starts[r])
            state_exp = self.exponents[start : start + length]
            state_coef = self.coeffs[start : start + length]
            fe = fexp[i, : flen[i]]
            fc = fcoef[i, : flen[i]]
            prod_exp = (
                np.round((state_exp[:, None] + fe[None, :]).ravel(), decimals)
                + 0.0
            )
            prod_coef = (state_coef[:, None] * fc[None, :]).ravel()
            if not np.isfinite(prod_exp).all():
                raise ValueError(
                    "rounded exponents overflowed float64; route these rows "
                    "through the scalar GenFunc instead"
                )
            merged_exp, inverse = np.unique(prod_exp, return_inverse=True)
            merged_coef = np.bincount(
                inverse, weights=prod_coef, minlength=merged_exp.size
            )
            if prune_floor > 0.0 and merged_exp.size:
                keep = merged_coef > prune_floor
                self.pruned_mass[r] += float(merged_coef[~keep].sum())
                merged_exp = merged_exp[keep]
                merged_coef = merged_coef[keep]
            merged.append((merged_exp, merged_coef))
        lens = np.array([e.size for e, __ in merged], dtype=np.int64)
        exp_flat = (
            np.concatenate([e for e, __ in merged]) if merged else np.empty(0)
        )
        coef_flat = (
            np.concatenate([c for __, c in merged]) if merged else np.empty(0)
        )
        return (rows, exp_flat, coef_flat, lens)

    def budget_rows(self, max_terms: int, floor_start: float = 0.0) -> None:
        """Apply :meth:`GenFunc.budgeted` to every over-budget row.

        All over-budget rows advance through the floor-tightening rounds
        together; each row's floor, keep masks, pruned mass, and the
        stable keep-heaviest rescue match its scalar loop exactly.
        """
        if max_terms < 1:
            raise ValueError(f"max_terms must be >= 1, got {max_terms!r}")
        over = np.nonzero(self.row_len > max_terms)[0]
        if over.size == 0:
            return
        floors = np.full(over.size, max(floor_start, _BUDGET_FLOOR_START))
        while True:
            active = np.nonzero(self.row_len[over] > max_terms)[0]
            if active.size == 0:
                return
            rows = over[active]
            lens = self.row_len[rows]
            width = int(lens.max())
            exp, coef = self._gather(rows, width, lens)
            v_mask = np.arange(width)[None, :] < lens[:, None]
            keep = (coef > floors[active][:, None]) & v_mask
            floors[active] *= _BUDGET_FLOOR_GROWTH
            kept = keep.sum(axis=1)
            rescue = np.nonzero(kept == 0)[0]
            for i in rescue.tolist():
                # The floor skipped past every coefficient at once: keep
                # the heaviest max_terms via the scalar's stable argsort.
                length = int(lens[i])
                row_coef = coef[i, :length].copy()
                argorder = np.argsort(row_coef, kind="stable")
                mask = np.zeros(length, dtype=bool)
                mask[argorder[-max_terms:]] = True
                keep[i, :length] = mask
            if rescue.size:
                kept = keep.sum(axis=1)
            changed = np.nonzero(kept < lens)[0]
            if changed.size == 0:
                continue
            for i in changed.tolist():
                length = int(lens[i])
                mask = keep[i, :length]
                self.pruned_mass[rows[i]] += float(coef[i, :length][~mask].sum())
            sub_exp, sub_coef, sub_len = self._compact(
                exp[changed], coef[changed], keep[changed]
            )
            self._write_blocks([(rows[changed], sub_exp, sub_coef, sub_len)])

    @classmethod
    def product(
        cls,
        n_rows: int,
        term_factors: Iterable[
            Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]
        ],
        decimals: int = _DEFAULT_DECIMALS,
        prune_floor: float = 0.0,
        max_terms: "int | None" = None,
    ) -> "BatchedGenFunc":
        """Batched :meth:`GenFunc.product` across ``n_rows`` rows.

        Args:
            term_factors: One ``(rows, factor_exponents, factor_coeffs,
                factor_len)`` tuple per query term, in query-term order —
                the rows the term's factor multiplies and the per-row
                factors (see :meth:`multiply_rows`).
            decimals / prune_floor / max_terms: As in
                :meth:`GenFunc.product`.

        Returns:
            The batch after all factors; row ``r`` is bit-identical to
            ``GenFunc.product`` over the factors whose ``rows`` contain
            ``r``, in order.
        """
        batch = cls.ones(n_rows)
        for rows, fexp, fcoef, flen in term_factors:
            batch.multiply_rows(
                rows, fexp, fcoef, flen, decimals=decimals, prune_floor=prune_floor
            )
            if max_terms is not None:
                # Only rows touched this step can exceed the budget — every
                # other row was shrunk when it was last multiplied.
                batch.budget_rows(max_terms, floor_start=prune_floor)
        return batch

    # -- batched usefulness read-out -----------------------------------------

    def tail_profile(
        self, thresholds: Sequence[float]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Tail mass and first moment of every row at every threshold.

        Returns:
            ``(mass, moment)`` arrays of shape ``(len(thresholds),
            n_rows)``, bit-identical to calling
            :meth:`GenFunc.tail_profile` on each row: the suffix
            cumulative sums run over the padded rows whose trailing pad
            entries are additive identities (``-0.0`` for the moment
            terms — ``x + -0.0 == x`` bit-for-bit even when ``x`` is a
            signed zero, whereas ``-0.0 + +0.0`` flips the sign the
            scalar cumsum preserves by *copying* its first element), and
            the threshold cut reproduces
            ``searchsorted(..., side="right")``.
        """
        grid = np.asarray(thresholds, dtype=float)
        n_rows = self.row_len.size
        mass = np.empty((grid.size, n_rows))
        moment = np.empty((grid.size, n_rows))
        if n_rows == 0:
            return mass, moment
        # Same power-of-two width bucketing as multiply_rows: the suffix
        # sums only pay for each row's own width (plus <2x padding), not
        # the widest row in the batch.
        bucket = np.maximum(
            np.frexp(np.maximum(self.row_len, 1).astype(np.float64))[1],
            _BUCKET_MIN_EXP,
        )
        for b in np.unique(bucket):
            rows = np.nonzero(bucket == b)[0]
            lens = self.row_len[rows]
            width = int(lens.max())
            exps, coef = self._gather(rows, width, lens)
            v_mask = np.arange(width)[None, :] < lens[:, None]
            exp_cmp = np.where(v_mask, exps, np.inf)
            # Pad slots must be the additive identity under IEEE addition:
            # -0.0, not +0.0.  A zero-coefficient term with a negative
            # exponent contributes -0.0 to the moment, and the scalar
            # cumsum *copies* that as its first reversed element, while
            # a +0.0 pad would turn it into +0.0 (-0.0 + 0.0 == +0.0).
            moment_terms = np.where(v_mask, coef * exps, -0.0)
            zero_col = np.zeros((rows.size, 1))
            mass_sfx = np.hstack(
                [np.cumsum(coef[:, ::-1], axis=1)[:, ::-1], zero_col]
            )
            mom_sfx = np.hstack(
                [np.cumsum(moment_terms[:, ::-1], axis=1)[:, ::-1], zero_col]
            )
            r_idx = np.arange(rows.size)
            # The empty tail reads the scalar sentinel +0.0, but a suffix
            # of -0.0 pads sums to -0.0 — pin each row's sentinel column.
            mom_sfx[r_idx, lens] = 0.0
            for i, t in enumerate(grid.tolist()):
                if t != t:  # searchsorted places NaN after every exponent
                    cnt = lens
                else:
                    cnt = (exp_cmp <= t).sum(axis=1)
                mass[i, rows] = mass_sfx[r_idx, cnt]
                moment[i, rows] = mom_sfx[r_idx, cnt]
        return mass, moment

    def __repr__(self) -> str:
        return (
            f"BatchedGenFunc(rows={self.n_rows}, "
            f"max_terms={int(self.row_len.max()) if self.row_len.size else 0})"
        )
