"""Engine-axis vectorized usefulness estimation over a fleet store.

The scalar path answers one (engine, query, threshold) at a time: walk the
representative dict, build per-term polynomials, expand, read the tail.
This module answers a whole fleet at once from a
:class:`~repro.representatives.columnar.FleetRepresentativeStore`: one
gather yields the ``(engines, query terms)`` statistics block, one numpy
pass computes every engine's polynomial factors, and the read-outs run
across the engine axis.

The contract throughout is *bit-identity with the scalar estimators*:

* The three expansion estimators (subrange, basic, binary-independence)
  share one batched polynomial kernel,
  :class:`~repro.core.genfunc.BatchedGenFunc`: the generating-function
  state of every engine advances together, one multiply-and-merge per
  query term, replicating the scalar ``round → unique → bincount``
  pipeline per row (see the kernel's docstring for the exactness argument
  covering rounding, merge order, pruning, and expansion budgets).  The
  subrange factor tensor — median weights ``w + c_j * sigma``, the
  max-weight singleton, probabilities — is built in one vectorized pass by
  :meth:`SubrangeEstimator.factor_grid`, and all tails come off one
  batched suffix-cumsum read (:meth:`BatchedGenFunc.tail_profile`).
* The gGlOSS estimators are closed-form over sorted bands; both variants
  vectorize to a lexsort plus suffix cumulative sums that accumulate in the
  scalar code's exact addition order.

There is no configuration-triggered fallback: pruning floors, expansion
budgets, off-grid ``decimals``, and exponents past ``2**53`` all run
through the batched kernel with scalar-identical semantics.  The only
escape hatch is per-engine *demotion* for rows whose factor exponents are
non-finite (or whose rounding would overflow float64) — those rows alone
are expanded with the scalar :meth:`GenFunc.product`, everything else
stays batched, and every demotion is counted (:func:`fallback_count`) and
reported to the estimator's metrics registry as
``vectorized.scalar_demotions``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.base import UsefulnessEstimator, _frozen_polynomial
from repro.core.basic_estimator import BasicEstimator
from repro.core.binary_estimator import BinaryIndependenceEstimator
from repro.core.genfunc import BatchedGenFunc, GenFunc
from repro.core.gloss import GlossDisjointEstimator, GlossHighCorrelationEstimator
from repro.core.subrange_estimator import SubrangeEstimator
from repro.core.types import Usefulness
from repro.corpus.query import Query
from repro.representatives.columnar import FleetRepresentativeStore

__all__ = [
    "fallback_count",
    "fleet_usefulness_grid",
    "reset_fallback_count",
    "supports_fleet",
]

#: Estimator types with a vectorized fleet path.  Exact types, not
#: subclasses: a subclass may override term_polynomial/estimate and the
#: vectorized re-implementation would silently diverge from it.
_FLEET_TYPES = (
    SubrangeEstimator,
    BasicEstimator,
    BinaryIndependenceEstimator,
    GlossHighCorrelationEstimator,
    GlossDisjointEstimator,
)

#: Exponent-magnitude ceiling after ``10**decimals`` scaling: beyond this
#: ``np.round``'s intermediate product can overflow to ``inf`` and the
#: batched kernel's padded sort loses its finite/in-row distinction.  The
#: affected rows are demoted to the scalar path (still exact); float64
#: itself tops out near 1.8e308.
_ROUND_OVERFLOW = 1e306

#: How many engine rows were demoted to the scalar per-engine product
#: because their factor exponents were non-finite or overflow-adjacent.
#: Zero on every sane representative; the fleet-scaling bench asserts it
#: stays zero through the whole sweep.
_SCALAR_DEMOTIONS = 0


def fallback_count() -> int:
    """Engine rows demoted to the scalar product since the last reset."""
    return _SCALAR_DEMOTIONS


def reset_fallback_count() -> None:
    """Zero the demotion counter (benches call this before a sweep)."""
    global _SCALAR_DEMOTIONS
    _SCALAR_DEMOTIONS = 0


def supports_fleet(estimator: UsefulnessEstimator) -> bool:
    """Whether ``estimator`` has a bit-identical vectorized fleet path."""
    return type(estimator) in _FLEET_TYPES


def fleet_usefulness_grid(
    estimator: UsefulnessEstimator,
    store: FleetRepresentativeStore,
    query: Query,
    thresholds: Sequence[float],
    polycache=None,
) -> Optional[List[List[Usefulness]]]:
    """Usefulness of every engine in ``store`` at every threshold.

    Args:
        estimator: One of the five supported estimators (see
            :func:`supports_fleet`); ``None`` is returned otherwise.
        store: The packed fleet; rows follow its ``engine_names`` order.
        query: The query.
        thresholds: Thresholds to read out (the expansion estimators share
            one expansion across all of them, like ``estimate_many``).
        polycache: Optional term-polynomial cache kept warm by the
            subrange path (factors stored are bit-identical to the scalar
            estimator's, so the cache stays interchangeable between the
            scalar and vectorized paths).

    Returns:
        ``grid[t][e]`` — the estimate for ``thresholds[t]`` and engine
        ``store.engine_names[e]``, bit-identical to the scalar estimator;
        or ``None`` when the estimator has no vectorized path.
    """
    if not supports_fleet(estimator):
        return None
    thresholds = [float(t) for t in thresholds]
    if len(store) == 0:
        return [[] for __ in thresholds]
    ids = store.vocab.ids_of(query.terms)
    p, w, sigma, mw = store.gather(ids)
    u = np.asarray(query.normalized_weights(), dtype=np.float64)
    n = store.n_documents
    matched = p > 0.0
    if isinstance(estimator, SubrangeEstimator):
        return _subrange_grid(
            estimator, store, query, p, w, sigma, mw, u, n, matched,
            thresholds, polycache,
        )
    if isinstance(estimator, BasicEstimator):
        x = u[None, :] * w
        return _expansion_grid(estimator, x, p, matched, n, thresholds)
    if isinstance(estimator, BinaryIndependenceEstimator):
        if estimator.global_weight is not None:
            gw = np.full(len(store), float(estimator.global_weight))
        else:
            gw = store.binary_mean_w
        x = u[None, :] * gw[:, None]
        return _expansion_grid(estimator, x, p, matched, n, thresholds)
    if isinstance(estimator, GlossHighCorrelationEstimator):
        return _gloss_hc_grid(p, w, u, n, matched, thresholds)
    return _gloss_disjoint_grid(p, w, u, n, matched, thresholds)


# -- shared expansion machinery ----------------------------------------------


def _unsafe_rows(exponent_bound: np.ndarray, decimals: int) -> np.ndarray:
    """Rows the batched kernel must not touch: worst-case accumulated
    exponent magnitude non-finite, or large enough that ``np.round``'s
    ``x * 10**decimals`` scaling could overflow float64 mid-product."""
    bad = ~np.isfinite(exponent_bound)
    if decimals > 0:
        with np.errstate(over="ignore", invalid="ignore"):
            bad |= exponent_bound * (10.0 ** decimals) >= _ROUND_OVERFLOW
    return bad


def _demote_rows(
    est,
    rows: np.ndarray,
    polys_of,
    thresholds: List[float],
) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
    """Scalar ``GenFunc.product`` tails for the demoted rows, counted."""
    global _SCALAR_DEMOTIONS
    tails: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    for e in rows.tolist():
        expansion = GenFunc.product(
            polys_of(e),
            decimals=est.decimals,
            prune_floor=est.prune_floor,
            max_terms=est.max_terms,
        )
        tails[e] = expansion.tail_profile(thresholds)
    _SCALAR_DEMOTIONS += len(tails)
    est.registry.counter("vectorized.scalar_demotions").inc(len(tails))
    return tails


def _grid_readout(
    batch: BatchedGenFunc,
    n: np.ndarray,
    thresholds: List[float],
    scalar_tails: Dict[int, Tuple[np.ndarray, np.ndarray]],
) -> List[List[Usefulness]]:
    """Batched tails -> per-threshold Usefulness rows (scalar-identical
    ``nodoc = n * mass`` / ``avgsim = moment / mass`` arithmetic)."""
    mass, moment = batch.tail_profile(thresholds)
    for e, (row_mass, row_moment) in scalar_tails.items():
        mass[:, e] = row_mass
        moment[:, e] = row_moment
    n_f = n.astype(np.float64)
    grid = []
    for i in range(len(thresholds)):
        m = mass[i]
        nodoc = n_f * m
        positive = m > 0.0
        avgsim = np.where(positive, moment[i] / np.where(positive, m, 1.0), 0.0)
        grid.append(
            [
                Usefulness(nodoc=nd, avgsim=av)
                for nd, av in zip(nodoc.tolist(), avgsim.tolist())
            ]
        )
    return grid


# -- subrange: batched factor tensor, batched product ------------------------


def _subrange_grid(
    est, store, query, p, w, sigma, mw, u, n, matched, thresholds, polycache
):
    """All subrange polynomial factors in one numpy pass, expanded with the
    batched :class:`BatchedGenFunc` product across the engine axis."""
    n_engines, n_terms = p.shape
    exps, coeffs, has_max_row, remaining = est.factor_grid(p, w, sigma, mw, u, n)
    n_sub = est._offsets.size
    if polycache is not None:
        _maintain_subrange_polycache(
            est, store, query, matched, has_max_row, remaining,
            exps, coeffs, n_sub, polycache,
        )
    # Worst-case exponent accumulation per engine: the largest |slot| of
    # each matched term's factor, summed over the query.
    slot_bound = np.where(matched, np.abs(exps).max(axis=2), 0.0).sum(axis=1)
    demoted = _unsafe_rows(slot_bound, est.decimals)
    vectorizable = ~demoted
    batch = BatchedGenFunc.ones(n_engines)
    for j in range(n_terms):
        rows = np.nonzero(matched[:, j] & vectorizable)[0]
        if rows.size == 0:
            continue
        fexp, fcoef, flen = _subrange_factor_rows(
            exps, coeffs, has_max_row, remaining, rows, j, n_sub
        )
        batch.multiply_rows(
            rows, fexp, fcoef, flen,
            decimals=est.decimals, prune_floor=est.prune_floor,
        )
        if est.max_terms is not None:
            batch.budget_rows(est.max_terms, floor_start=est.prune_floor)
    scalar_tails: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    if demoted.any():
        scalar_tails = _demote_rows(
            est,
            np.nonzero(demoted)[0],
            lambda e: _subrange_scalar_polys(
                exps, coeffs, has_max_row, remaining, matched, e, n_sub
            ),
            thresholds,
        )
    return _grid_readout(batch, n, thresholds, scalar_tails)


def _subrange_factor_rows(exps, coeffs, has_max_row, remaining, rows, j, n_sub):
    """Per-row subrange factors for term ``j`` in scalar point order.

    Three factor shapes exist (see
    :meth:`SubrangeEstimator.term_polynomial`): the full
    ``[singleton, medians..., miss]``, the collapsed ``[singleton, miss]``
    when the singleton absorbs the whole occurrence probability, and the
    ``[medians..., miss]`` form when the scheme carries no max subrange
    (or the engine has no documents).  All three are sliced from the
    factor tensor into one padded ``(rows, S + 2)`` block with per-row
    effective lengths — the batched kernel ignores the padding entirely.
    """
    width = n_sub + 2
    fexp = np.zeros((rows.size, width))
    fcoef = np.zeros((rows.size, width))
    flen = np.empty(rows.size, dtype=np.int64)
    with_max = has_max_row[rows]
    live_medians = remaining[rows, j] > 0.0
    full = with_max & live_medians
    singleton = with_max & ~live_medians
    no_max = ~with_max
    if full.any():
        sel = rows[full]
        fexp[full] = exps[sel, j]
        fcoef[full] = coeffs[sel, j]
        flen[full] = width
    if singleton.any():
        sel = rows[singleton]
        fexp[singleton, 0] = exps[sel, j, 0]
        fcoef[singleton, 0] = coeffs[sel, j, 0]
        fexp[singleton, 1] = exps[sel, j, n_sub + 1]
        fcoef[singleton, 1] = coeffs[sel, j, n_sub + 1]
        flen[singleton] = 2
    if no_max.any():
        sel = rows[no_max]
        fexp[no_max, : n_sub + 1] = exps[sel, j, 1:]
        fcoef[no_max, : n_sub + 1] = coeffs[sel, j, 1:]
        flen[no_max] = n_sub + 1
    return fexp, fcoef, flen


def _subrange_scalar_polys(exps, coeffs, has_max_row, remaining, matched, e, n_sub):
    """Engine ``e``'s factor list, sliced from the same tensors the batch
    uses — the demotion path's input to the scalar ``GenFunc.product``."""
    head_tail = np.array([0, n_sub + 1])
    polys = []
    for j in range(matched.shape[1]):
        if not matched[e, j]:
            continue
        if has_max_row[e]:
            if remaining[e, j] > 0.0:
                polys.append((exps[e, j], coeffs[e, j]))
            else:
                polys.append((exps[e, j, head_tail], coeffs[e, j, head_tail]))
        else:
            polys.append((exps[e, j, 1:], coeffs[e, j, 1:]))
    return polys


def _maintain_subrange_polycache(
    est, store, query, matched, has_max_row, remaining, exps, coeffs, n_sub,
    polycache,
):
    """Keep the term-polynomial cache warm from the vectorized tensors.

    The batched kernel computes every factor in one pass, so the cache is
    no longer consulted *for* the computation — but it is still the
    scalar/batch interchange point (the scalar broker path and
    ``TermPolynomialCache`` invalidation tests rely on it), so the grid
    performs the same lookup/store protocol: misses are populated with
    frozen copies bit-identical to :meth:`term_polynomial`'s output and
    unmatched terms are negatively cached.
    """
    config = est.polynomial_config()
    names = store.engine_names
    head_tail = np.array([0, n_sub + 1])
    u_items = list(query.normalized_items())
    for e, name in enumerate(names):
        for j, (term, uj) in enumerate(u_items):
            hit, __ = polycache.lookup(config, name, term, uj)
            if hit:
                continue
            if not matched[e, j]:
                polycache.store(config, name, term, uj, None)
                continue
            if has_max_row[e]:
                if remaining[e, j] > 0.0:
                    factor = (exps[e, j], coeffs[e, j])
                else:
                    factor = (exps[e, j, head_tail], coeffs[e, j, head_tail])
            else:
                factor = (exps[e, j, 1:], coeffs[e, j, 1:])
            polycache.store(
                config, name, term, uj,
                _frozen_polynomial((factor[0].copy(), factor[1].copy())),
            )


# -- basic / binary: engine-parallel expansion -------------------------------


def _expansion_grid(est, x, p, matched, n, thresholds):
    """Engine-parallel expansion of the two-point factors
    ``p * X^x + (1-p)`` through the batched kernel — every estimator
    configuration (pruning, budgets, any ``decimals``) included."""
    n_engines, n_terms = x.shape
    bound = np.where(matched, np.abs(x), 0.0).sum(axis=1)
    demoted = _unsafe_rows(bound, est.decimals)
    vectorizable = ~demoted
    batch = BatchedGenFunc.ones(n_engines)
    for j in range(n_terms):
        rows = np.nonzero(matched[:, j] & vectorizable)[0]
        if rows.size == 0:
            continue
        fexp = np.zeros((rows.size, 2))
        fexp[:, 0] = x[rows, j]
        fcoef = np.empty((rows.size, 2))
        fcoef[:, 0] = p[rows, j]
        fcoef[:, 1] = 1.0 - p[rows, j]
        batch.multiply_rows(
            rows, fexp, fcoef,
            decimals=est.decimals, prune_floor=est.prune_floor,
        )
        if est.max_terms is not None:
            batch.budget_rows(est.max_terms, floor_start=est.prune_floor)
    scalar_tails: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    if demoted.any():
        scalar_tails = _demote_rows(
            est,
            np.nonzero(demoted)[0],
            lambda e: [
                (
                    np.array([x[e, j2], 0.0]),
                    np.array([p[e, j2], 1.0 - p[e, j2]]),
                )
                for j2 in range(n_terms)
                if matched[e, j2]
            ],
            thresholds,
        )
    return _grid_readout(batch, n, thresholds, scalar_tails)


# -- gGlOSS ------------------------------------------------------------------


def _gloss_hc_grid(p, w, u, n, matched, thresholds):
    """High-correlation bands across the engine axis.

    Matched terms sort per engine by ``(df, u, w)`` ascending with original
    position as the final tiebreak — the exact order Python's stable tuple
    sort produces in the scalar estimator.  Unmatched terms sort last
    (``df = inf``) with zero contributions, so the suffix-similarity chain
    accumulates in the scalar order with bit-inert +0.0 prefixes.
    """
    n_engines, n_terms = p.shape
    n_f = n.astype(np.float64)
    dfs = p * n_f[:, None]
    contrib = u[None, :] * w
    df_key = np.where(matched, dfs, np.inf)
    u_key = np.where(matched, np.broadcast_to(u, p.shape), 0.0)
    w_key = np.where(matched, w, 0.0)
    row = np.repeat(np.arange(n_engines), n_terms)
    col = np.tile(np.arange(n_terms), n_engines)
    order = np.lexsort(
        (col, w_key.ravel(), u_key.ravel(), df_key.ravel(), row)
    )
    df_s = df_key.ravel()[order].reshape(n_engines, n_terms)
    c_s = (
        np.where(matched, contrib, 0.0).ravel()[order].reshape(n_engines, n_terms)
    )
    m_s = matched.ravel()[order].reshape(n_engines, n_terms)
    suffix = np.cumsum(c_s[:, ::-1], axis=1)[:, ::-1]
    prev = np.hstack([np.zeros((n_engines, 1)), df_s[:, :-1]])
    with np.errstate(invalid="ignore"):
        pop = df_s - prev
        grid = []
        for t in thresholds:
            nodoc = np.zeros(n_engines)
            sim_sum = np.zeros(n_engines)
            for i in range(n_terms):
                cond = m_s[:, i] & (pop[:, i] > 0.0) & (suffix[:, i] > t)
                nodoc = nodoc + np.where(cond, pop[:, i], 0.0)
                sim_sum = sim_sum + np.where(
                    cond, pop[:, i] * suffix[:, i], 0.0
                )
            grid.append(_usefulness_row(nodoc, sim_sum))
    return grid


def _gloss_disjoint_grid(p, w, u, n, matched, thresholds):
    """Disjoint-assumption groups, accumulated in query-term order."""
    n_engines, n_terms = p.shape
    n_f = n.astype(np.float64)
    dfs = p * n_f[:, None]
    contrib = u[None, :] * w
    grid = []
    for t in thresholds:
        nodoc = np.zeros(n_engines)
        sim_sum = np.zeros(n_engines)
        for j in range(n_terms):
            cond = matched[:, j] & (contrib[:, j] > t) & (dfs[:, j] > 0.0)
            nodoc = nodoc + np.where(cond, dfs[:, j], 0.0)
            sim_sum = sim_sum + np.where(cond, dfs[:, j] * contrib[:, j], 0.0)
        grid.append(_usefulness_row(nodoc, sim_sum))
    return grid


def _usefulness_row(nodoc: np.ndarray, sim_sum: np.ndarray) -> List[Usefulness]:
    positive = nodoc > 0.0
    avgsim = np.where(positive, sim_sum / np.where(positive, nodoc, 1.0), 0.0)
    return [
        Usefulness(nodoc=(nd if ok else 0.0), avgsim=av)
        for nd, av, ok in zip(nodoc.tolist(), avgsim.tolist(), positive.tolist())
    ]
