"""Engine-axis vectorized usefulness estimation over a fleet store.

The scalar path answers one (engine, query, threshold) at a time: walk the
representative dict, build per-term polynomials, expand, read the tail.
This module answers a whole fleet at once from a
:class:`~repro.representatives.columnar.FleetRepresentativeStore`: one
gather yields the ``(engines, query terms)`` statistics block, one numpy
pass computes every engine's polynomial factors, and the read-outs run
across the engine axis.

The contract throughout is *bit-identity with the scalar estimators*:

* The subrange method computes all factor tensors (median weights
  ``w + c_j * sigma``, the max-weight singleton, probabilities) in one
  vectorized pass, then feeds each engine's factors to the existing
  :meth:`GenFunc.product` — the same merge the scalar path runs, on
  bit-identical inputs.
* The basic and binary-independence methods expand *all* engines together:
  the generating-function state is an ``(engines, terms)`` matrix whose
  exponents live as integers on the rounding grid (``np.round(x, d)`` is
  exactly ``rint(x * 10**d) / 10**d`` for float64, so integer keys and the
  scalar's rounded floats are interconvertible bit-for-bit), and each
  multiply-and-merge step reproduces the scalar ``round → unique →
  bincount`` pipeline with one flat integer sort.  Terms an engine does not
  match multiply its row by the ghost factor ``1 * X^0 + 0 * X^0``, which
  leaves state bits unchanged (``c + 0.0 == c``; no new exponents appear).
* The gGlOSS estimators are closed-form over sorted bands; both variants
  vectorize to a lexsort plus suffix cumulative sums that accumulate in the
  scalar code's exact addition order.

Where an estimator configuration would change the arithmetic (prune
floors, expansion budgets, exponents off the integer-key grid), the basic
and binary paths fall back to per-engine :meth:`GenFunc.product` on the
same vectorized factor tensors — slower, still exact.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.base import UsefulnessEstimator, _frozen_polynomial
from repro.core.basic_estimator import BasicEstimator
from repro.core.binary_estimator import BinaryIndependenceEstimator
from repro.core.genfunc import GenFunc
from repro.core.gloss import GlossDisjointEstimator, GlossHighCorrelationEstimator
from repro.core.subrange_estimator import SubrangeEstimator
from repro.core.types import Usefulness
from repro.corpus.query import Query
from repro.representatives.columnar import FleetRepresentativeStore
from repro.stats.normal import normal_quantile

__all__ = ["fleet_usefulness_grid", "supports_fleet"]

#: Estimator types with a vectorized fleet path.  Exact types, not
#: subclasses: a subclass may override term_polynomial/estimate and the
#: vectorized re-implementation would silently diverge from it.
_FLEET_TYPES = (
    SubrangeEstimator,
    BasicEstimator,
    BinaryIndependenceEstimator,
    GlossHighCorrelationEstimator,
    GlossDisjointEstimator,
)

#: Above this magnitude an exponent times ``10**decimals`` may lose integer
#: precision in float64, breaking the int-key equivalence — fall back.
_MAX_EXACT = 2.0 ** 53


def supports_fleet(estimator: UsefulnessEstimator) -> bool:
    """Whether ``estimator`` has a bit-identical vectorized fleet path."""
    return type(estimator) in _FLEET_TYPES


def fleet_usefulness_grid(
    estimator: UsefulnessEstimator,
    store: FleetRepresentativeStore,
    query: Query,
    thresholds: Sequence[float],
    polycache=None,
) -> Optional[List[List[Usefulness]]]:
    """Usefulness of every engine in ``store`` at every threshold.

    Args:
        estimator: One of the five supported estimators (see
            :func:`supports_fleet`); ``None`` is returned otherwise.
        store: The packed fleet; rows follow its ``engine_names`` order.
        query: The query.
        thresholds: Thresholds to read out (the expansion estimators share
            one expansion across all of them, like ``estimate_many``).
        polycache: Optional term-polynomial cache consulted/populated by
            the subrange path (factors stored are bit-identical to the
            scalar estimator's, so the cache stays interchangeable).

    Returns:
        ``grid[t][e]`` — the estimate for ``thresholds[t]`` and engine
        ``store.engine_names[e]``, bit-identical to the scalar estimator;
        or ``None`` when the estimator has no vectorized path.
    """
    if not supports_fleet(estimator):
        return None
    thresholds = [float(t) for t in thresholds]
    if len(store) == 0:
        return [[] for __ in thresholds]
    ids = store.vocab.ids_of(query.terms)
    p, w, sigma, mw = store.gather(ids)
    u = np.asarray(query.normalized_weights(), dtype=np.float64)
    n = store.n_documents
    matched = p > 0.0
    if isinstance(estimator, SubrangeEstimator):
        return _subrange_grid(
            estimator, store, query, p, w, sigma, mw, u, n, matched,
            thresholds, polycache,
        )
    if isinstance(estimator, BasicEstimator):
        x = u[None, :] * w
        return _expansion_grid(estimator, x, p, matched, n, thresholds)
    if isinstance(estimator, BinaryIndependenceEstimator):
        if estimator.global_weight is not None:
            gw = np.full(len(store), float(estimator.global_weight))
        else:
            gw = store.binary_mean_w
        x = u[None, :] * gw[:, None]
        return _expansion_grid(estimator, x, p, matched, n, thresholds)
    if isinstance(estimator, GlossHighCorrelationEstimator):
        return _gloss_hc_grid(p, w, u, n, matched, thresholds)
    return _gloss_disjoint_grid(p, w, u, n, matched, thresholds)


# -- subrange: vectorized factors, per-engine product ------------------------


def _subrange_grid(
    est, store, query, p, w, sigma, mw, u, n, matched, thresholds, polycache
):
    """All subrange polynomial factors in one numpy pass, expanded with the
    scalar :meth:`GenFunc.product` per engine."""
    n_engines, n_terms = p.shape
    z = normal_quantile(est.max_percentile / 100.0)
    # Effective max weight: stored when allowed and present, else the
    # clamped normal estimate — elementwise identical to _effective_max
    # (Python min/max and np.minimum/np.maximum agree on the non-negative,
    # NaN-free values here).
    estimated_mw = np.minimum(1.0, np.maximum(w + z * sigma, 0.0))
    if est.use_stored_max:
        mw_eff = np.where(np.isnan(mw), estimated_mw, mw)
    else:
        mw_eff = estimated_mw
    n_f = n.astype(np.float64)
    has_max_row = (
        (n > 0) if est.scheme.include_max else np.zeros(n_engines, dtype=bool)
    )
    with np.errstate(divide="ignore"):
        inv_n = np.where(n > 0, 1.0 / n_f, np.inf)
    p_max = np.minimum(inv_n[:, None], p)
    remaining = np.where(has_max_row[:, None], p - p_max, p)
    n_sub = est._offsets.size
    medians = np.clip(
        w[:, :, None] + est._offsets * sigma[:, :, None],
        0.0,
        mw_eff[:, :, None],
    )
    exps = np.empty((n_engines, n_terms, n_sub + 2))
    coeffs = np.empty((n_engines, n_terms, n_sub + 2))
    exps[:, :, 0] = u[None, :] * mw_eff
    exps[:, :, 1 : n_sub + 1] = u[None, :, None] * medians
    exps[:, :, n_sub + 1] = 0.0
    coeffs[:, :, 0] = p_max
    coeffs[:, :, 1 : n_sub + 1] = remaining[:, :, None] * est._masses
    coeffs[:, :, n_sub + 1] = 1.0 - p

    head_tail = np.array([0, n_sub + 1])
    u_items = list(query.normalized_items())
    names = store.engine_names
    config = est.polynomial_config() if polycache is not None else None
    per_engine: List[List[Usefulness]] = []
    for e in range(n_engines):
        polys = []
        for j, (term, uj) in enumerate(u_items):
            if polycache is not None:
                hit, poly = polycache.lookup(config, names[e], term, uj)
                if hit:
                    if poly is not None:
                        polys.append(poly)
                    continue
            if not matched[e, j]:
                if polycache is not None:
                    polycache.store(config, names[e], term, uj, None)
                continue
            if has_max_row[e]:
                if remaining[e, j] > 0.0:
                    factor = (exps[e, j], coeffs[e, j])
                else:
                    factor = (exps[e, j, head_tail], coeffs[e, j, head_tail])
            else:
                factor = (exps[e, j, 1:], coeffs[e, j, 1:])
            if polycache is not None:
                poly = _frozen_polynomial(
                    (factor[0].copy(), factor[1].copy())
                )
                polycache.store(config, names[e], term, uj, poly)
                polys.append(poly)
            else:
                polys.append(factor)
        expansion = GenFunc.product(
            polys,
            decimals=est.decimals,
            prune_floor=est.prune_floor,
            max_terms=est.max_terms,
        )
        mass, moment = expansion.tail_profile(thresholds)
        n_e = int(n[e])
        per_engine.append(
            [
                Usefulness(nodoc=n_e * m, avgsim=(mo / m if m > 0.0 else 0.0))
                for m, mo in zip(mass.tolist(), moment.tolist())
            ]
        )
    return [
        [per_engine[e][t] for e in range(n_engines)]
        for t in range(len(thresholds))
    ]


# -- basic / binary: engine-parallel expansion -------------------------------


def _expansion_grid(est, x, p, matched, n, thresholds):
    """Engine-parallel expansion of two-point factors; falls back to
    per-engine products when the parallel merge cannot stay bit-exact."""
    grid = None
    if est.prune_floor == 0.0 and est.max_terms is None and 0 <= est.decimals <= 15:
        grid = _parallel_expansion_grid(est, x, p, matched, n, thresholds)
    if grid is None:
        grid = _per_engine_expansion_grid(est, x, p, matched, n, thresholds)
    return grid


def _parallel_expansion_grid(est, x, p, matched, n, thresholds):
    n_engines, n_terms = x.shape
    scale = float(10 ** est.decimals)
    keys = np.zeros((n_engines, 1), dtype=np.int64)
    coeffs = np.ones((n_engines, 1))
    row_len = np.ones(n_engines, dtype=np.int64)
    row_ids = np.arange(n_engines, dtype=np.int64)
    for j in range(n_terms):
        # Matched rows multiply by [p * X^x + (1-p)]; unmatched rows by the
        # ghost factor [1 * X^0 + 0 * X^0], whose zero-coefficient entry
        # merges into each existing exponent group adding +0.0 — state bits
        # are unchanged, exactly as the scalar path's skip leaves them.
        m = matched[:, j]
        fexp = np.stack(
            [np.where(m, x[:, j], 0.0), np.zeros(n_engines)], axis=1
        )
        fcoef = np.stack(
            [np.where(m, p[:, j], 1.0), np.where(m, 1.0 - p[:, j], 0.0)],
            axis=1,
        )
        width = keys.shape[1]
        state_exp = keys.astype(np.float64) / scale
        sums = (state_exp[:, :, None] + fexp[:, None, :]).reshape(
            n_engines, 2 * width
        )
        scaled = sums * scale
        if scaled.size and not (np.abs(scaled).max() < _MAX_EXACT):
            return None  # off the exact integer grid; per-engine fallback
        new_keys = np.rint(scaled).astype(np.int64)
        new_coeffs = (coeffs[:, :, None] * fcoef[:, None, :]).reshape(
            n_engines, 2 * width
        )
        valid = np.repeat(
            np.arange(width)[None, :] < row_len[:, None], 2, axis=1
        ).ravel()
        rows_flat = np.repeat(row_ids, 2 * width)[valid]
        cols_flat = np.tile(np.arange(2 * width, dtype=np.int64), n_engines)[valid]
        keys_flat = new_keys.ravel()[valid]
        if keys_flat.size and int(keys_flat.min()) < 0:
            return None
        key_bits = max(int(keys_flat.max()).bit_length(), 1) if keys_flat.size else 1
        idx_bits = max(int(2 * width - 1).bit_length(), 1)
        row_bits = max(int(n_engines - 1).bit_length(), 1)
        if row_bits + key_bits + idx_bits > 62:
            return None
        # One flat sort orders by (row, exponent key, original position):
        # the low position bits make every packed value unique, so even an
        # unstable sort yields the scalar merge's stable element order.
        packed = (rows_flat << (key_bits + idx_bits)) | (keys_flat << idx_bits) | cols_flat
        packed.sort()
        idx_mask = (1 << idx_bits) - 1
        key_mask = (1 << key_bits) - 1
        row_sorted = packed >> (key_bits + idx_bits)
        key_sorted = (packed >> idx_bits) & key_mask
        col_sorted = packed & idx_mask
        coef_sorted = new_coeffs.ravel()[row_sorted * (2 * width) + col_sorted]
        top = packed >> idx_bits
        boundary = np.empty(packed.size, dtype=bool)
        boundary[0] = True
        boundary[1:] = top[1:] != top[:-1]
        group_id = np.cumsum(boundary) - 1
        n_groups = int(group_id[-1]) + 1
        # bincount accumulates element-by-element in array order; within a
        # group that order is the original ravel order — the exact addition
        # sequence np.unique + bincount runs in the scalar merge.
        group_coef = np.bincount(group_id, weights=coef_sorted, minlength=n_groups)
        group_key = key_sorted[boundary]
        group_row = row_sorted[boundary]
        rows_per = np.bincount(group_row, minlength=n_engines)
        new_width = int(rows_per.max())
        first = np.zeros(n_engines + 1, dtype=np.int64)
        np.cumsum(rows_per, out=first[1:])
        pos = np.arange(n_groups, dtype=np.int64) - first[group_row]
        keys = np.zeros((n_engines, new_width), dtype=np.int64)
        coeffs = np.zeros((n_engines, new_width))
        keys[group_row, pos] = group_key
        coeffs[group_row, pos] = group_coef
        row_len = rows_per.astype(np.int64)
    # Read-out: suffix cumulative sums along the (ascending) exponent axis,
    # with row padding as trailing +0.0 terms (bit-inert in the chain).
    width = keys.shape[1]
    real = np.arange(width)[None, :] < row_len[:, None]
    exp_f = keys.astype(np.float64) / scale
    exp_cmp = np.where(real, exp_f, np.inf)
    coef = np.where(real, coeffs, 0.0)
    moment_terms = coef * np.where(real, exp_f, 0.0)
    mass_sfx = np.hstack(
        [np.cumsum(coef[:, ::-1], axis=1)[:, ::-1], np.zeros((n_engines, 1))]
    )
    mom_sfx = np.hstack(
        [
            np.cumsum(moment_terms[:, ::-1], axis=1)[:, ::-1],
            np.zeros((n_engines, 1)),
        ]
    )
    n_f = n.astype(np.float64)
    grid = []
    for t in thresholds:
        cnt = (exp_cmp <= t).sum(axis=1)
        mass = mass_sfx[row_ids, cnt]
        moment = mom_sfx[row_ids, cnt]
        nodoc = n_f * mass
        positive = mass > 0.0
        avgsim = np.where(
            positive, moment / np.where(positive, mass, 1.0), 0.0
        )
        grid.append(
            [
                Usefulness(nodoc=nd, avgsim=av)
                for nd, av in zip(nodoc.tolist(), avgsim.tolist())
            ]
        )
    return grid


def _per_engine_expansion_grid(est, x, p, matched, n, thresholds):
    """Exact fallback: scalar-identical factors, one product per engine."""
    n_engines, n_terms = x.shape
    grid_rows = []
    for e in range(n_engines):
        polys = [
            (
                np.array([x[e, j], 0.0]),
                np.array([p[e, j], 1.0 - p[e, j]]),
            )
            for j in range(n_terms)
            if matched[e, j]
        ]
        expansion = GenFunc.product(
            polys,
            decimals=est.decimals,
            prune_floor=est.prune_floor,
            max_terms=est.max_terms,
        )
        mass, moment = expansion.tail_profile(thresholds)
        n_e = int(n[e])
        grid_rows.append(
            [
                Usefulness(nodoc=n_e * m, avgsim=(mo / m if m > 0.0 else 0.0))
                for m, mo in zip(mass.tolist(), moment.tolist())
            ]
        )
    return [
        [grid_rows[e][t] for e in range(n_engines)]
        for t in range(len(thresholds))
    ]


# -- gGlOSS ------------------------------------------------------------------


def _gloss_hc_grid(p, w, u, n, matched, thresholds):
    """High-correlation bands across the engine axis.

    Matched terms sort per engine by ``(df, u, w)`` ascending with original
    position as the final tiebreak — the exact order Python's stable tuple
    sort produces in the scalar estimator.  Unmatched terms sort last
    (``df = inf``) with zero contributions, so the suffix-similarity chain
    accumulates in the scalar order with bit-inert +0.0 prefixes.
    """
    n_engines, n_terms = p.shape
    n_f = n.astype(np.float64)
    dfs = p * n_f[:, None]
    contrib = u[None, :] * w
    df_key = np.where(matched, dfs, np.inf)
    u_key = np.where(matched, np.broadcast_to(u, p.shape), 0.0)
    w_key = np.where(matched, w, 0.0)
    row = np.repeat(np.arange(n_engines), n_terms)
    col = np.tile(np.arange(n_terms), n_engines)
    order = np.lexsort(
        (col, w_key.ravel(), u_key.ravel(), df_key.ravel(), row)
    )
    df_s = df_key.ravel()[order].reshape(n_engines, n_terms)
    c_s = (
        np.where(matched, contrib, 0.0).ravel()[order].reshape(n_engines, n_terms)
    )
    m_s = matched.ravel()[order].reshape(n_engines, n_terms)
    suffix = np.cumsum(c_s[:, ::-1], axis=1)[:, ::-1]
    prev = np.hstack([np.zeros((n_engines, 1)), df_s[:, :-1]])
    with np.errstate(invalid="ignore"):
        pop = df_s - prev
        grid = []
        for t in thresholds:
            nodoc = np.zeros(n_engines)
            sim_sum = np.zeros(n_engines)
            for i in range(n_terms):
                cond = m_s[:, i] & (pop[:, i] > 0.0) & (suffix[:, i] > t)
                nodoc = nodoc + np.where(cond, pop[:, i], 0.0)
                sim_sum = sim_sum + np.where(
                    cond, pop[:, i] * suffix[:, i], 0.0
                )
            grid.append(_usefulness_row(nodoc, sim_sum))
    return grid


def _gloss_disjoint_grid(p, w, u, n, matched, thresholds):
    """Disjoint-assumption groups, accumulated in query-term order."""
    n_engines, n_terms = p.shape
    n_f = n.astype(np.float64)
    dfs = p * n_f[:, None]
    contrib = u[None, :] * w
    grid = []
    for t in thresholds:
        nodoc = np.zeros(n_engines)
        sim_sum = np.zeros(n_engines)
        for j in range(n_terms):
            cond = matched[:, j] & (contrib[:, j] > t) & (dfs[:, j] > 0.0)
            nodoc = nodoc + np.where(cond, dfs[:, j], 0.0)
            sim_sum = sim_sum + np.where(cond, dfs[:, j] * contrib[:, j], 0.0)
        grid.append(_usefulness_row(nodoc, sim_sum))
    return grid


def _usefulness_row(nodoc: np.ndarray, sim_sum: np.ndarray) -> List[Usefulness]:
    positive = nodoc > 0.0
    avgsim = np.where(positive, sim_sum / np.where(positive, nodoc, 1.0), 0.0)
    return [
        Usefulness(nodoc=(nd if ok else 0.0), avgsim=av)
        for nd, av, ok in zip(nodoc.tolist(), avgsim.tolist(), positive.tolist())
    ]
