"""The subrange-based estimation method — the paper's contribution.

For each query term the occurrence probability ``p`` is split across the
subranges of a :class:`~repro.representatives.SubrangeScheme`; each subrange
is represented by its median weight, approximated under the normal
assumption as ``w + c_j * sigma`` (Expression (8)).  When the scheme includes
the max-weight singleton, that subrange holds the term's maximum normalized
weight with probability ``1/n`` — the component responsible for the paper's
correct-identification guarantee on single-term queries.

Two operating modes mirror the paper's experiments:

* ``use_stored_max=True`` (default) — quadruplet representative; the stored
  ``mw`` is used (Tables 1-9).
* ``use_stored_max=False`` — triplet representative; ``mw`` is *estimated*
  as the ``max_percentile`` (default 99.9) point of ``N(w, sigma^2)``
  (Tables 10-12).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.base import ExpansionEstimator, register_estimator
from repro.representatives.subrange import SubrangeScheme
from repro.representatives.term_stats import TermStats
from repro.stats.normal import normal_quantile

__all__ = ["SubrangeEstimator"]


class SubrangeEstimator(ExpansionEstimator):
    """Generating-function estimator with subrange-resolved term weights.

    Args:
        scheme: The subrange partition; defaults to the paper's six-subrange
            evaluation configuration.
        use_stored_max: Whether the representative's stored maximum
            normalized weight may be used; when False (or absent from the
            representative) it is estimated from ``(w, sigma)``.
        max_percentile: Percentile of the normal approximation used to
            estimate a missing maximum weight (the paper uses 99.9).
        decimals / prune_floor: Expansion controls, see
            :class:`~repro.core.base.ExpansionEstimator`.
    """

    name = "subrange"
    label = "subrange method"

    def __init__(
        self,
        scheme: Optional[SubrangeScheme] = None,
        use_stored_max: bool = True,
        max_percentile: float = 99.9,
        decimals: int = 8,
        prune_floor: float = 0.0,
        max_terms: Optional[int] = None,
    ):
        super().__init__(
            decimals=decimals, prune_floor=prune_floor, max_terms=max_terms
        )
        self.scheme = scheme or SubrangeScheme.paper_six()
        self.use_stored_max = use_stored_max
        if not 0.0 < max_percentile < 100.0:
            raise ValueError(
                f"max_percentile must be in (0, 100), got {max_percentile!r}"
            )
        self.max_percentile = max_percentile
        self._offsets = np.asarray(self.scheme.normal_offsets())
        self._masses = np.asarray(self.scheme.masses)

    # -- per-term polynomial ------------------------------------------------------

    def _effective_max(self, stats: TermStats) -> float:
        """The max weight used for clamping and for the singleton subrange.

        The triplet-mode estimate ``w + z * sigma`` is clamped to ``[0, 1]``:
        a normalized document weight can never exceed 1, and an unclamped
        high-sigma term would place probability mass at impossible
        similarities (> 1), inflating est_NoDoc above the threshold range a
        real document can reach.
        """
        if self.use_stored_max and stats.max_weight is not None:
            return stats.max_weight
        return min(
            1.0,
            max(
                stats.mean
                + normal_quantile(self.max_percentile / 100.0) * stats.std,
                0.0,
            ),
        )

    def term_polynomial(
        self, u: float, stats: TermStats, n_documents: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Expression (8) for one query term.

        Args:
            u: Normalized query weight of the term.
            stats: The term's representative statistics.
            n_documents: Database size ``n`` (the singleton max subrange has
                probability ``1/n``).
        """
        p = stats.probability
        mw = self._effective_max(stats)
        exponents: List[float] = []
        coeffs: List[float] = []
        remaining = p
        if self.scheme.include_max and n_documents > 0:
            p_max = min(1.0 / n_documents, p)
            exponents.append(u * mw)
            coeffs.append(p_max)
            remaining = p - p_max
        if remaining > 0.0:
            medians = np.clip(stats.mean + self._offsets * stats.std, 0.0, mw)
            exponents.extend((u * medians).tolist())
            coeffs.extend((remaining * self._masses).tolist())
        exponents.append(0.0)
        coeffs.append(1.0 - p)
        return np.asarray(exponents), np.asarray(coeffs)

    def factor_grid(
        self,
        p: np.ndarray,
        w: np.ndarray,
        sigma: np.ndarray,
        mw: np.ndarray,
        u: np.ndarray,
        n: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Expression (8) for a whole fleet in one numpy pass.

        The batched counterpart of :meth:`term_polynomial`: given the
        ``(engines, query terms)`` statistics block of a
        :class:`~repro.representatives.columnar.FleetRepresentativeStore`
        gather, computes every engine's per-term factor points at once.

        Args:
            p / w / sigma / mw: ``(E, Q)`` statistics arrays; ``NaN`` in
                ``mw`` encodes a triplet-mode "no stored max".
            u: ``(Q,)`` normalized query weights.
            n: ``(E,)`` per-engine document counts.

        Returns:
            ``(exponents, coefficients, has_max_row, remaining)``.  The
            first two are ``(E, Q, S + 2)`` tensors laid out
            ``[max-weight singleton, subrange medians..., miss]``; each
            slot is elementwise bit-identical to the scalar
            :meth:`term_polynomial`'s value for that engine and term.
            ``has_max_row`` marks engines whose factors carry the
            singleton slot, and ``remaining[e, q] > 0`` marks factors
            whose median slots are live — together they say which slice
            of the tensor is engine ``e``'s actual factor.
        """
        n_engines = p.shape[0]
        z = normal_quantile(self.max_percentile / 100.0)
        # Effective max weight: stored when allowed and present, else the
        # clamped normal estimate — elementwise identical to
        # _effective_max (Python min/max and np.minimum/np.maximum agree
        # on the non-negative, NaN-free values here).
        estimated_mw = np.minimum(1.0, np.maximum(w + z * sigma, 0.0))
        if self.use_stored_max:
            mw_eff = np.where(np.isnan(mw), estimated_mw, mw)
        else:
            mw_eff = estimated_mw
        n_f = n.astype(np.float64)
        has_max_row = (
            (n > 0)
            if self.scheme.include_max
            else np.zeros(n_engines, dtype=bool)
        )
        with np.errstate(divide="ignore"):
            inv_n = np.where(n > 0, 1.0 / n_f, np.inf)
        p_max = np.minimum(inv_n[:, None], p)
        remaining = np.where(has_max_row[:, None], p - p_max, p)
        n_sub = self._offsets.size
        medians = np.clip(
            w[:, :, None] + self._offsets * sigma[:, :, None],
            0.0,
            mw_eff[:, :, None],
        )
        exponents = np.empty(p.shape + (n_sub + 2,))
        coefficients = np.empty_like(exponents)
        exponents[:, :, 0] = u[None, :] * mw_eff
        exponents[:, :, 1 : n_sub + 1] = u[None, :, None] * medians
        exponents[:, :, n_sub + 1] = 0.0
        coefficients[:, :, 0] = p_max
        coefficients[:, :, 1 : n_sub + 1] = remaining[:, :, None] * self._masses
        coefficients[:, :, n_sub + 1] = 1.0 - p
        return exponents, coefficients, has_max_row, remaining

    def polynomial_config(self) -> Tuple:
        return (
            type(self).__name__,
            self.scheme,
            self.use_stored_max,
            self.max_percentile,
        )


register_estimator("subrange", SubrangeEstimator)
register_estimator(
    "subrange-triplet", lambda: SubrangeEstimator(use_stored_max=False)
)
