"""Continuous micro-batching: coalesce concurrent requests into one batch.

The broker's batch entry points (:meth:`~repro.metasearch.broker.
MetasearchBroker.estimate_batch`, :meth:`~repro.metasearch.broker.
MetasearchBroker.search_batch`) and the coordinator's single-scatter
batches only pay off for clients that *pre-batch*.  A
:class:`CoalescingWindow` brings the same amortization to independent
concurrent requests — the request-coalescing shape inference servers use
to keep batched kernels fed:

* **Idle fast-path.**  A request arriving while nothing is queued and no
  batch is executing runs *immediately*, solo, on its own thread, inside
  its own ambient deadline scope.  A lone request is never delayed — the
  uncontended path is the per-request path plus one lock acquisition.
* **Window.**  Requests arriving while a batch is executing (or while
  others are queued) join a window.  The window flushes when the
  previous batch finishes (``drain``), when it reaches ``max_batch``
  (``full``), or when the *oldest* queued request has waited ``max_wait``
  seconds (``timer`` — a second batch may overlap a slow one, so added
  latency stays bounded by ``max_wait`` even under a straggler).
* **Leader election, no extra threads.**  There is no flusher thread:
  the flushing batch is executed by one of its own member threads (the
  first member to observe the flush condition), and every other member
  waits on a condition variable for its demultiplexed result.
* **Deadline correctness.**  A member whose deadline expires while
  queued gets :class:`CoalesceExpired` (the gateway's 504) immediately
  and is dropped from the batch without spending any batch work.  The
  batch itself executes under a *detached* deadline scope set to the
  **longest** remaining deadline among its live members — the ambient
  scope stack only ever tightens, so without detaching, the leader's own
  (possibly shortest) deadline would poison its batchmates.
* **Dedup.**  With a ``key`` function, members sharing a key within one
  window are collapsed into a single executed item whose result is
  fanned back out to all of them (the gateway keys estimate requests by
  normalized query identity + threshold, so identical concurrent
  queries cost one grid row).
* **Cache probe.**  With a ``probe`` function, a request that can be
  answered from cache returns instantly without joining any window,
  preserving the serial path's 100% repeat-hit behavior.

Demultiplexed results are bit-for-bit what the per-request path returns
because ``execute`` is handed the broker's own batch entry points, whose
rows are already proven equal to the serial calls (PR 3/5 differential
suites); the window adds scheduling, never arithmetic.

Metrics (all labeled ``window=<name>``): ``serving.coalesce.requests``,
``.cache_hits``, ``.deduped``, ``.expired``, ``.flush`` (labeled by
``reason``), ``.batch.occupancy`` histogram, ``.wait.seconds`` histogram.
"""

from __future__ import annotations

import time
from threading import Condition
from typing import Callable, List, Optional, Sequence

from repro.obs.registry import LATENCY_BUCKETS, OCCUPANCY_BUCKETS, NULL_REGISTRY
from repro.serving.deadlines import Deadline, detached_deadline_scope

__all__ = [
    "FLUSH_DRAIN",
    "FLUSH_FULL",
    "FLUSH_IDLE",
    "FLUSH_REASONS",
    "FLUSH_TIMER",
    "CoalesceClosed",
    "CoalesceExpired",
    "CoalescingWindow",
]

#: Flush reasons (the ``reason`` label on ``serving.coalesce.flush``).
FLUSH_IDLE = "idle"  # lone request, fast-path: a batch of one, zero wait
FLUSH_DRAIN = "drain"  # previous batch finished and picked up the queue
FLUSH_FULL = "full"  # the window reached max_batch
FLUSH_TIMER = "timer"  # the oldest queued request waited max_wait

FLUSH_REASONS = (FLUSH_IDLE, FLUSH_DRAIN, FLUSH_FULL, FLUSH_TIMER)


class CoalesceExpired(Exception):
    """The request's deadline ran out while queued in a window."""


class CoalesceClosed(Exception):
    """The window refused the request because the server is draining."""


class _Member:
    """One request waiting in (or leading) a window."""

    __slots__ = (
        "item", "deadline", "enqueued", "taken", "done", "result", "error"
    )

    def __init__(self, item, deadline: Optional[Deadline], enqueued: float):
        self.item = item
        self.deadline = deadline
        self.enqueued = enqueued
        self.taken = False  # claimed by a leader; no longer in the queue
        self.done = False
        self.result = None
        self.error: Optional[BaseException] = None


class CoalescingWindow:
    """Gather concurrent submissions into batched ``execute`` calls.

    Args:
        execute: ``execute(items) -> results`` returning exactly one
            result per item, in order.  Typically a broker batch entry
            point.  Must be thread-safe: a ``timer`` flush may overlap a
            still-running batch.
        max_wait: Seconds the oldest queued request may wait before the
            window flushes regardless of occupancy (> 0).
        max_batch: Flush as soon as this many requests are queued (>= 1).
        key: Optional ``key(item)``; members of one window sharing a key
            execute once and share the result object.
        probe: Optional ``probe(item)``; a non-``None`` return is the
            answer — the request never joins a window.
        registry: Metrics sink; the shared no-op registry by default.
        name: The ``window`` label on every metric this window emits.
    """

    def __init__(
        self,
        execute: Callable[[List], Sequence],
        *,
        max_wait: float,
        max_batch: int,
        key: Optional[Callable] = None,
        probe: Optional[Callable] = None,
        registry=None,
        name: str = "window",
    ):
        if max_wait <= 0:
            raise ValueError(f"max_wait must be > 0, got {max_wait!r}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch!r}")
        registry = registry if registry is not None else NULL_REGISTRY
        self.max_wait = max_wait
        self.max_batch = max_batch
        self.name = name
        self._execute = execute
        self._key = key
        self._probe = probe
        self._cond = Condition()
        self._queue: List[_Member] = []
        self._inflight = 0  # batches currently executing
        self._closed = False
        labels = {"window": name}
        self._m_requests = registry.counter(
            "serving.coalesce.requests", labels=labels
        )
        self._m_cache_hits = registry.counter(
            "serving.coalesce.cache_hits", labels=labels
        )
        self._m_deduped = registry.counter(
            "serving.coalesce.deduped", labels=labels
        )
        self._m_expired = registry.counter(
            "serving.coalesce.expired", labels=labels
        )
        self._m_flush = {
            reason: registry.counter(
                "serving.coalesce.flush",
                labels={"window": name, "reason": reason},
            )
            for reason in FLUSH_REASONS
        }
        self._m_occupancy = registry.histogram(
            "serving.coalesce.batch.occupancy",
            buckets=OCCUPANCY_BUCKETS,
            labels=labels,
        )
        self._m_wait = registry.histogram(
            "serving.coalesce.wait.seconds",
            buckets=LATENCY_BUCKETS,
            labels=labels,
        )

    # -- introspection -------------------------------------------------------

    @property
    def queued(self) -> int:
        with self._cond:
            return len(self._queue)

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    def __repr__(self) -> str:
        with self._cond:
            return (
                f"CoalescingWindow({self.name!r}, queued={len(self._queue)}, "
                f"inflight={self._inflight}, max_wait={self.max_wait}, "
                f"max_batch={self.max_batch})"
            )

    # -- drain ---------------------------------------------------------------

    def close(self) -> None:
        """Refuse new submissions; members already queued still flush."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- submission ----------------------------------------------------------

    def submit(self, item, deadline: Optional[Deadline] = None):
        """Answer ``item``, batching it with concurrent submissions.

        Blocks until the batch containing ``item`` has executed and
        returns ``item``'s demultiplexed result.  Exceptions raised by
        ``execute`` propagate to every member of the failing batch.

        Raises:
            CoalesceExpired: ``deadline`` ran out while queued.
            CoalesceClosed: the window is closed (server draining).
        """
        self._m_requests.inc()
        if self._probe is not None:
            hit = self._probe(item)
            if hit is not None:
                self._m_cache_hits.inc()
                return hit
        member = _Member(item, deadline, time.monotonic())
        with self._cond:
            if self._closed:
                raise CoalesceClosed(f"window {self.name!r} is draining")
            if self._inflight == 0 and not self._queue:
                # Idle fast-path: execute solo, immediately, on this
                # thread, inside the caller's own ambient deadline scope.
                self._inflight += 1
                batch, reason = [member], FLUSH_IDLE
            else:
                self._queue.append(member)
                self._cond.notify_all()
                batch, reason = self._wait_for_flush(member)
                if batch is None:
                    # Woken with our result (or error) already demuxed.
                    if member.error is not None:
                        raise member.error
                    return member.result
        return self._run_batch(batch, reason, member)

    def _wait_for_flush(self, member: _Member):
        """Wait (lock held) until ``member`` is done or leads a flush.

        Returns ``(batch, reason)`` when this thread must execute the
        batch (``member`` is in it), or ``(None, None)`` once the member
        was answered by another leader.
        """
        while True:
            if member.done:
                return None, None
            if (
                not member.taken
                and member.deadline is not None
                and member.deadline.expired
            ):
                # Expire in place: drop out of the queue without costing
                # the batch anything — batchmates are unaffected.  (Once
                # taken by a leader the member is out of the queue; its
                # own post-handler deadline check still yields the 504.)
                self._queue.remove(member)
                self._m_expired.inc()
                self._cond.notify_all()
                raise CoalesceExpired(
                    "deadline expired while queued for coalescing"
                )
            if not member.taken:
                flush = self._due_flush_locked()
                if flush is not None:
                    batch, reason = flush
                    if member in batch:
                        for taken in batch:
                            taken.taken = True
                        del self._queue[: len(batch)]
                        self._inflight += 1
                        self._cond.notify_all()
                        return batch, reason
                    # A flush is due but this member is beyond the head
                    # batch; a head member will take it — keep waiting.
            self._cond.wait(self._wait_timeout_locked(member))

    def _due_flush_locked(self):
        """The due head batch and its reason, or ``None``."""
        if not self._queue:
            return None
        if self._inflight == 0:
            reason = FLUSH_DRAIN
        elif len(self._queue) >= self.max_batch:
            reason = FLUSH_FULL
        elif time.monotonic() - self._queue[0].enqueued >= self.max_wait:
            reason = FLUSH_TIMER
        else:
            return None
        return self._queue[: self.max_batch], reason

    def _wait_timeout_locked(self, member: _Member) -> Optional[float]:
        """Sleep no longer than the next event that could involve us:
        the oldest queued member's timer, or our own deadline.  A taken
        member only needs the leader's completion notify."""
        if member.taken or not self._queue:
            return None
        now = time.monotonic()
        timeout = self._queue[0].enqueued + self.max_wait - now
        if member.deadline is not None:
            timeout = min(timeout, member.deadline.expires_at - now)
        return max(0.0, timeout)

    # -- batch execution (leader only, lock not held) ------------------------

    def _run_batch(self, batch: List[_Member], reason: str, leader: _Member):
        now = time.monotonic()
        live: List[_Member] = []
        for member in batch:
            self._m_wait.observe(now - member.enqueued)
            if member.deadline is not None and member.deadline.expired:
                member.error = CoalesceExpired(
                    "deadline expired while queued for coalescing"
                )
                self._m_expired.inc()
            else:
                live.append(member)
        self._m_flush[reason].inc()
        self._m_occupancy.observe(len(batch))
        try:
            if live:
                self._execute_live(live, reason)
        finally:
            with self._cond:
                self._inflight -= 1
                for member in batch:
                    member.done = True
                self._cond.notify_all()
        if leader.error is not None:
            raise leader.error
        return leader.result

    def _execute_live(self, live: List[_Member], reason: str) -> None:
        if self._key is not None:
            groups: dict = {}
            order: List[_Member] = []
            for member in live:
                k = self._key(member.item)
                bucket = groups.get(k)
                if bucket is None:
                    groups[k] = [member]
                    order.append(member)
                else:
                    bucket.append(member)
            self._m_deduped.inc(len(live) - len(order))
            fanout = [groups[self._key(member.item)] for member in order]
        else:
            order = live
            fanout = [[member] for member in live]
        try:
            if reason == FLUSH_IDLE:
                # Solo fast-path: the caller's own ambient scope already
                # holds exactly its deadline — identical to no coalescing.
                results = self._execute([m.item for m in order])
            else:
                with detached_deadline_scope(self._batch_deadline(live)):
                    results = self._execute([m.item for m in order])
            if len(results) != len(order):
                raise RuntimeError(
                    f"coalesced execute returned {len(results)} results "
                    f"for {len(order)} items"
                )
        except BaseException as exc:
            for member in live:
                member.error = exc
        else:
            for members, result in zip(fanout, results):
                for member in members:
                    member.result = result

    @staticmethod
    def _batch_deadline(live: List[_Member]) -> Optional[Deadline]:
        """The *loosest* member deadline — ambient scopes only tighten,
        so the batch must run under the longest remaining budget and let
        each member's own post-handler check enforce its tighter one."""
        deadline = None
        for member in live:
            if member.deadline is None:
                return None
            if deadline is None or member.deadline.expires_at > deadline.expires_at:
                deadline = member.deadline
        return deadline
