"""An asyncio frontend for the serving apps.

:class:`AsyncServingServer` serves the same :class:`~repro.serving.http.
ServingApp` subclasses as the thread-per-connection
:class:`~repro.serving.http.ServingServer`, but the connection handling
is a single ``asyncio`` event loop: each keep-alive connection costs one
coroutine instead of one OS thread, so a coordinator multiplexing
hundreds of idle client connections (shards, load generators, health
probes) does not pay a thread stack per socket.  Request *handling*
stays synchronous — ``app.handle`` runs on a bounded thread pool, where
blocking broker work (NumPy kernels, shard RPCs) belongs — so every app
runs unchanged under either server.  The pool is sized past the app's
admission bound (``max_active + max_queued``) when it has one, so the
admission queue, not the executor, decides who waits and who is shed.
That sizing also keeps request coalescing live-locked-free under this
frontend: a :class:`~repro.serving.coalesce.CoalescingWindow` leader
executes a flushed batch on its own handler thread while its batchmates
block on the window's condition variable — every one of those threads
holds an admission slot, so at most ``max_active + max_queued`` executor
threads can ever be parked in windows and the pool always has headroom
to admit the leader that flushes them.

Framing mirrors the threaded server's policy exactly: HTTP/1.1 with
keep-alive, ``Content-Length`` on every response, 411 for chunked
bodies, 400 for a bad ``Content-Length``, and 413 with
``Connection: close`` for bodies over ``app.max_body`` (refused before
reading).  Binary bodies (shard ``/slice`` bundles) are handed to the
transport without copying.

The lifecycle API matches :class:`~repro.serving.http.ServingServer` —
``url``, ``start_background()``, ``run()``, ``drain()``,
``final_metrics``, ``install_signal_handlers()`` — so the CLI and the
subprocess test harness drive both interchangeably.
"""

from __future__ import annotations

import asyncio
import logging
import signal
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from http import HTTPStatus
from typing import Optional, Set

from repro.obs.export import registry_to_prometheus
from repro.serving.http import HTTPError, Response, ServingApp
from repro.version import package_version

__all__ = ["AsyncServingServer"]

log = logging.getLogger("repro.serving.async")

#: Stream reader buffer limit; also bounds a single header line.
_READ_LIMIT = 1 << 16


class _Headers(dict):
    """A case-insensitive header mapping (stdlib ``self.headers`` is
    case-insensitive, and app code — ``X-Repro-Deadline`` lookups — relies
    on that)."""

    def __setitem__(self, key: str, value: str) -> None:
        super().__setitem__(key.lower(), value)

    def __getitem__(self, key: str) -> str:
        return super().__getitem__(key.lower())

    def __contains__(self, key) -> bool:
        return super().__contains__(str(key).lower())

    def get(self, key: str, default=None):
        return super().get(key.lower(), default)


class _CloseConnection(Exception):
    """Stop serving this connection (after any response already sent)."""


class AsyncServingServer:
    """Serve a :class:`~repro.serving.http.ServingApp` on an asyncio loop.

    Args:
        app: The app to serve (gateway, coordinator, shard, engine — any
            :class:`ServingApp`).
        host: Bind address (loopback by default).
        port: TCP port; 0 asks the OS for a free one (read it back from
            :attr:`port` / :attr:`url`).
        workers: Handler thread-pool size; defaults to the app's
            admission bound plus slack (or 16 without admission) so
            admission control, not the executor queue, is what limits
            concurrency.
        backlog: Listen backlog.
    """

    def __init__(
        self,
        app: ServingApp,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: Optional[int] = None,
        backlog: int = 128,
    ):
        if workers is None:
            admission = getattr(app, "admission", None)
            if admission is not None:
                workers = admission.max_active + admission.max_queued + 4
            else:
                workers = 16
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.app = app
        # Bind eagerly (as ServingServer does) so the port is known — and
        # printable — before the event loop thread starts.
        self._sock = socket.create_server((host, port), backlog=backlog)
        self.host, self.port = self._sock.getsockname()[:2]
        self._workers = workers
        self._backlog = backlog
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._stop: Optional[asyncio.Event] = None
        self._connections: Set[asyncio.Task] = set()
        self._ready = threading.Event()
        self._drained = threading.Event()
        self._drain_lock = threading.Lock()
        self._drain_started = False
        self._drain_timeout: Optional[float] = 30.0
        self._drain_completed = False
        self._startup_error: Optional[BaseException] = None
        self.final_metrics: Optional[str] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- the event loop ------------------------------------------------------

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-async"
        )
        try:
            server = await asyncio.start_server(
                self._serve_connection,
                sock=self._sock,
                backlog=self._backlog,
                limit=_READ_LIMIT,
            )
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            self._drained.set()
            return
        self._ready.set()
        try:
            await self._stop.wait()
            # Drain: stop accepting first, then let in-flight handlers
            # finish (wait_idle blocks a pool thread, not the loop), then
            # nudge idle keep-alive connections closed.
            server.close()
            await server.wait_closed()
            self._drain_completed = await self._loop.run_in_executor(
                None, self.app.wait_idle, self._drain_timeout
            )
            for task in list(self._connections):
                task.cancel()
            if self._connections:
                await asyncio.gather(
                    *self._connections, return_exceptions=True
                )
        finally:
            self.final_metrics = registry_to_prometheus(self.app.registry)
            self._executor.shutdown(wait=False)
            self._drained.set()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        gauge = self.app.registry.gauge("serving.async.connections")
        gauge.set(len(self._connections))
        try:
            while True:
                try:
                    await self._serve_one(reader, writer)
                except (
                    _CloseConnection,
                    asyncio.CancelledError,
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    TimeoutError,
                ):
                    break
        finally:
            self._connections.discard(task)
            gauge.set(len(self._connections))
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # client already gone
                pass

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
        except ValueError:  # request line exceeded the stream limit
            await self._respond(
                writer,
                HTTPError(431, "request line too long", close=True).to_response(),
            )
            raise _CloseConnection
        if not request_line:
            raise _CloseConnection  # clean keep-alive close
        try:
            method, path, version = (
                request_line.decode("latin-1").rstrip("\r\n").split(" ", 2)
            )
        except (UnicodeDecodeError, ValueError):
            await self._respond(
                writer,
                HTTPError(400, "malformed request line", close=True).to_response(),
            )
            raise _CloseConnection
        headers = _Headers()
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                await self._respond(
                    writer,
                    HTTPError(431, "header too long", close=True).to_response(),
                )
                raise _CloseConnection
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip()] = value.strip()

        # Body policy mirrors the threaded server: 411/400/413 with close,
        # the oversized body refused unread.
        try:
            if "chunked" in headers.get("Transfer-Encoding", ""):
                raise HTTPError(
                    411,
                    "chunked bodies unsupported; send Content-Length",
                    close=True,
                )
            try:
                length = int(headers.get("Content-Length") or 0)
            except ValueError:
                raise HTTPError(400, "bad Content-Length", close=True) from None
            if length < 0:
                raise HTTPError(400, "bad Content-Length", close=True)
            if length > self.app.max_body:
                raise HTTPError(
                    413,
                    f"body of {length} bytes exceeds limit of "
                    f"{self.app.max_body}",
                    close=True,
                )
        except HTTPError as err:
            await self._respond(writer, err.to_response())
            raise _CloseConnection
        body = await reader.readexactly(length) if length else b""

        # The app (and JSON framing) run on the pool; the loop only moves
        # bytes.  ``handle`` never raises by contract.
        response, payload = await self._loop.run_in_executor(
            self._executor, self._render, method, path, headers, body
        )
        client_close = headers.get("Connection", "").lower() == "close" or (
            version == "HTTP/1.0"
            and headers.get("Connection", "").lower() != "keep-alive"
        )
        await self._respond(writer, response, payload)
        if response.close or client_close or self.app.draining:
            raise _CloseConnection

    def _render(self, method, path, headers, body):
        response = self.app.handle(method, path, headers, body)
        return response, response.body_bytes()

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        response: Response,
        payload: Optional[bytes] = None,
    ) -> None:
        if payload is None:
            payload = response.body_bytes()
        try:
            reason = HTTPStatus(response.status).phrase
        except ValueError:
            reason = ""
        lines = [
            f"HTTP/1.1 {response.status} {reason}",
            f"Server: repro-serving/{package_version()}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(payload)}",
            f"X-Repro-Version: {package_version()}",
        ]
        for name, value in response.headers.items():
            lines.append(f"{name}: {value}")
        if response.close:
            lines.append("Connection: close")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head)
        if payload:
            # write() enqueues the buffer as-is — no copy of a cached
            # .npz blob on its way out.
            writer.write(payload)
        await writer.drain()

    # -- lifecycle -----------------------------------------------------------

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - loop crash
            self._startup_error = exc
            self._ready.set()
            self._drained.set()

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns once the listener is bound."""
        thread = threading.Thread(
            target=self._run_loop,
            name=f"repro-async-{self.app.role}",
            daemon=True,
        )
        thread.start()
        self._ready.wait(timeout=5.0)
        if self._startup_error is not None:
            raise self._startup_error
        return thread

    def drain(self, timeout: Optional[float] = 30.0) -> bool:
        """Graceful shutdown: refuse new work, finish in-flight requests,
        flush metrics, close every connection.  Idempotent; concurrent
        callers block until the first drain finishes."""
        with self._drain_lock:
            first = not self._drain_started
            self._drain_started = True
        if not first:
            self._drained.wait()
            return self._drain_completed
        self._drain_timeout = timeout
        self.app.begin_drain()
        if self._loop is not None and not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # loop shut down between check and call
                pass
        self._drained.wait()
        log.info(
            "drained %s (%scomplete)",
            self.app.role,
            "" if self._drain_completed else "in",
        )
        return self._drain_completed

    def install_signal_handlers(self, drain_timeout: Optional[float] = 30.0):
        """Map SIGTERM/SIGINT to a graceful drain (main thread only)."""

        def _on_signal(signum, frame):
            threading.Thread(
                target=self.drain, args=(drain_timeout,), daemon=True
            ).start()

        try:
            signal.signal(signal.SIGTERM, _on_signal)
            signal.signal(signal.SIGINT, _on_signal)
        except ValueError:  # pragma: no cover - not the main thread
            log.debug("signal handlers unavailable off the main thread")

    def run(self, drain_timeout: Optional[float] = 30.0) -> bool:
        """Foreground serving for the CLI: serve, drain on signal, return
        True when the drain completed cleanly."""
        thread = self.start_background()
        self.install_signal_handlers(drain_timeout)
        self._drained.wait()
        thread.join(timeout=5.0)
        return self._drain_completed
