"""The broker gateway: a metasearch broker behind HTTP admission control.

:class:`GatewayApp` puts a :class:`~repro.metasearch.broker.MetasearchBroker`
— whose registered engines may be local objects, :class:`~repro.serving.
remote_engine.RemoteEngine` adapters, or a mix — behind three endpoints:

* ``POST /estimate`` — per-engine usefulness estimates, best first.
* ``POST /search`` — the full pipeline (estimate, select, dispatch,
  merge); the response decodes back into a
  :class:`~repro.metasearch.broker.MetasearchResponse` that compares
  equal to an in-process answer.
* ``POST /batch`` — many queries through the broker's amortized batch
  pipeline in one request.

Every broker-touching request passes the :class:`~repro.serving.admission.
AdmissionQueue` first: ``max_active`` requests execute concurrently,
``max_queued`` more wait (no longer than their remaining deadline), and
the rest are shed instantly with ``503`` + ``Retry-After``.  Draining
closes the queue — new work is refused while admitted and queued requests
run to completion — which combined with
:meth:`~repro.serving.http.ServingServer.drain`'s stop-accept /
wait-idle / final-metrics-flush sequence gives the gateway a complete
graceful-shutdown story under SIGTERM.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Union

from repro.corpus.query import Query
from repro.metasearch.broker import MetasearchBroker
from repro.metasearch.cache import EstimateCache
from repro.obs.registry import MetricsRegistry
from repro.serving.admission import ADMITTED, CLOSED, EXPIRED, AdmissionQueue
from repro.serving.coalesce import (
    CoalesceClosed,
    CoalesceExpired,
    CoalescingWindow,
)
from repro.serving.deadlines import Deadline, ambient_deadline
from repro.serving.http import HTTPError, Response, Route, ServingApp
from repro.serving.wire import (
    WireFormatError,
    estimate_to_wire,
    query_from_wire,
    response_to_wire,
)

__all__ = ["GatewayApp"]

#: Largest /batch request accepted (queries per call).
DEFAULT_MAX_BATCH = 256

#: Default coalescing window occupancy cap.
DEFAULT_COALESCE_MAX_BATCH = 64


class GatewayApp(ServingApp):
    """Serve a metasearch broker with bounded admission.

    Args:
        broker: The broker to expose.  Register engines (local or remote)
            on it before serving.
        max_active: Broker requests allowed to execute concurrently.
        max_queued: Further requests allowed to wait for a slot; beyond
            this the gateway sheds.
        max_queue_wait: Wait cap in seconds for queued requests carrying
            no deadline (deadline-carrying requests wait at most their
            remaining budget).
        retry_after: The ``Retry-After`` hint sent with shed responses.
        max_batch: Queries accepted per ``/batch`` request.
        coalesce_window: Continuous micro-batching window in *seconds*
            (``0``, the default, disables coalescing entirely).  When
            enabled, concurrent ``/estimate`` and ``/search`` requests
            coalesce into single broker batch calls through a
            :class:`~repro.serving.coalesce.CoalescingWindow` per route —
            responses are bit-for-bit the per-request path's, and a lone
            request under zero concurrency takes the idle fast-path
            (never delayed).
        coalesce_max_batch: Occupancy cap per coalesced window.
        registry: Metrics sink shared by the app, the admission queue,
            and (if constructed with it) the broker.
        max_body: Request body cap in bytes.
        default_deadline: Budget applied to requests without an
            ``X-Repro-Deadline`` header.
    """

    role = "gateway"

    def __init__(
        self,
        broker: MetasearchBroker,
        *,
        max_active: int = 8,
        max_queued: int = 32,
        max_queue_wait: float = 5.0,
        retry_after: float = 1.0,
        max_batch: int = DEFAULT_MAX_BATCH,
        coalesce_window: float = 0.0,
        coalesce_max_batch: int = DEFAULT_COALESCE_MAX_BATCH,
        registry=None,
        **kwargs,
    ):
        if max_queue_wait < 0:
            raise ValueError(
                f"max_queue_wait must be >= 0, got {max_queue_wait!r}"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch!r}")
        if coalesce_window < 0:
            raise ValueError(
                f"coalesce_window must be >= 0, got {coalesce_window!r}"
            )
        registry = registry if registry is not None else MetricsRegistry()
        self.broker = broker
        self.max_queue_wait = max_queue_wait
        self.retry_after = retry_after
        self.max_batch = max_batch
        self.coalesce_window = coalesce_window
        self.coalesce_max_batch = coalesce_max_batch
        self.admission = AdmissionQueue(
            max_active, max_queued, registry=registry
        )
        self._coalesce_estimate: Optional[CoalescingWindow] = None
        self._coalesce_search: Optional[CoalescingWindow] = None
        if coalesce_window > 0:
            # Repeat queries answer straight from the estimate cache
            # without joining a window; backends without a full-row cache
            # probe (e.g. a ShardedFleet) simply always batch.
            probe_all = getattr(broker, "estimate_all_cached", None)
            probe = None
            if probe_all is not None:
                probe = lambda item: probe_all(item[0], item[1])  # noqa: E731
            self._coalesce_estimate = CoalescingWindow(
                self._execute_estimates,
                max_wait=coalesce_window,
                max_batch=coalesce_max_batch,
                key=lambda item: (EstimateCache.query_key(item[0]), item[1]),
                probe=probe,
                registry=registry,
                name="estimate",
            )
            # Searches dispatch to engines (side effects per call), so the
            # search window batches without intra-window dedup; the broker
            # still shares expansions across duplicate queries internally.
            self._coalesce_search = CoalescingWindow(
                self._execute_searches,
                max_wait=coalesce_window,
                max_batch=coalesce_max_batch,
                registry=registry,
                name="search",
            )
        super().__init__(registry=registry, **kwargs)

    def add_routes(self) -> None:
        self.route("POST", "/estimate", self._route_estimate)
        self.route("POST", "/search", self._route_search)
        self.route("POST", "/batch", self._route_batch)

    def health_info(self) -> dict:
        info = {
            "engines": self.broker.engine_names,
            "admission": {
                "active": self.admission.active,
                "queued": self.admission.queued,
            },
        }
        if self._coalesce_estimate is not None:
            info["coalesce"] = {
                "window_seconds": self.coalesce_window,
                "max_batch": self.coalesce_max_batch,
            }
        return info

    # -- admission wrapping --------------------------------------------------

    def _invoke(
        self,
        route: Route,
        params,
        payload,
        deadline: Optional[Deadline],
    ) -> Response:
        if route.drain_ok:  # healthz/metrics bypass admission
            return route.handler(params, payload)
        wait = self.max_queue_wait
        if deadline is not None:
            wait = min(wait, deadline.remaining())
        outcome = self.admission.acquire(timeout=wait)
        if outcome != ADMITTED:
            if outcome == CLOSED:
                raise HTTPError(503, "gateway is draining", close=True)
            if outcome == EXPIRED:
                raise HTTPError(
                    504, "deadline expired while queued for admission"
                )
            raise HTTPError(  # SHED
                503,
                "gateway overloaded; retry later",
                retry_after=self.retry_after,
                close=True,
            )
        try:
            return route.handler(params, payload)
        finally:
            self.admission.release()

    def begin_drain(self) -> None:
        super().begin_drain()
        self.admission.close()
        # Already-queued window members still flush; new arrivals refuse.
        if self._coalesce_estimate is not None:
            self._coalesce_estimate.close()
        if self._coalesce_search is not None:
            self._coalesce_search.close()

    # -- coalescing ----------------------------------------------------------

    def _execute_estimates(self, items):
        """One broker batch call for a flushed estimate window."""
        return self.broker.estimate_batch(
            [query for query, __ in items],
            [threshold for __, threshold in items],
        )

    def _execute_searches(self, items):
        """One broker batch call for a flushed search window.

        Runs un-limited; each member's own ``limit`` is applied at demux
        (``merge_hits`` sorts under a total key before truncating, so
        ``hits[:limit]`` equals a limited merge exactly).
        """
        return self.broker.search_batch(
            [query for query, __ in items],
            [threshold for __, threshold in items],
            limit=None,
        )

    def _coalesced(self, window: CoalescingWindow, item):
        """Submit to a window, mapping its refusals onto HTTP errors."""
        try:
            return window.submit(item, deadline=ambient_deadline())
        except CoalesceExpired as exc:
            raise HTTPError(504, str(exc)) from exc
        except CoalesceClosed as exc:
            raise HTTPError(503, "gateway is draining", close=True) from exc

    # -- request parsing -----------------------------------------------------

    @staticmethod
    def _parse_query(raw) -> Query:
        try:
            return query_from_wire(raw)
        except WireFormatError as exc:
            raise HTTPError(400, f"bad query: {exc}") from exc

    @staticmethod
    def _parse_limit(payload: dict) -> Optional[int]:
        limit = payload.get("limit")
        if limit is None:
            return None
        try:
            limit = int(limit)
        except (TypeError, ValueError) as exc:
            raise HTTPError(400, f"bad limit: {exc}") from exc
        if limit < 0:
            raise HTTPError(400, f"limit must be >= 0, got {limit}")
        return limit

    @staticmethod
    def _require(payload: dict, name: str):
        try:
            return payload[name]
        except KeyError:
            raise HTTPError(
                400, f"payload missing required field {name!r}"
            ) from None

    @classmethod
    def _parse_threshold(cls, payload: dict) -> float:
        try:
            return float(cls._require(payload, "threshold"))
        except (TypeError, ValueError) as exc:
            raise HTTPError(400, f"bad threshold: {exc}") from exc

    # -- routes --------------------------------------------------------------

    def _route_estimate(self, params, payload) -> Response:
        query = self._parse_query(self._require(payload, "query"))
        threshold = self._parse_threshold(payload)
        if self._coalesce_estimate is not None:
            estimates = self._coalesced(
                self._coalesce_estimate, (query, threshold)
            )
        else:
            estimates = self.broker.estimate_all(query, threshold)
        return Response(
            payload={
                "kind": "estimates",
                "estimates": [estimate_to_wire(e) for e in estimates],
            }
        )

    def _route_search(self, params, payload) -> Response:
        query = self._parse_query(self._require(payload, "query"))
        threshold = self._parse_threshold(payload)
        limit = self._parse_limit(payload)
        if self._coalesce_search is not None:
            response = self._coalesced(
                self._coalesce_search, (query, threshold)
            )
            if limit is not None and len(response.hits) > limit:
                response = replace(response, hits=response.hits[:limit])
        else:
            response = self.broker.search(query, threshold, limit=limit)
        return Response(payload=response_to_wire(response))

    def _route_batch(self, params, payload) -> Response:
        raw_queries = self._require(payload, "queries")
        if not isinstance(raw_queries, list):
            raise HTTPError(400, "'queries' must be a list")
        if len(raw_queries) > self.max_batch:
            raise HTTPError(
                413,
                f"batch of {len(raw_queries)} queries exceeds limit of "
                f"{self.max_batch}",
            )
        queries = [self._parse_query(raw) for raw in raw_queries]
        raw_thresholds = self._require(payload, "thresholds")
        thresholds: Union[float, List[float]]
        try:
            if isinstance(raw_thresholds, list):
                thresholds = [float(t) for t in raw_thresholds]
            else:
                thresholds = float(raw_thresholds)
        except (TypeError, ValueError) as exc:
            raise HTTPError(400, f"bad thresholds: {exc}") from exc
        limit = self._parse_limit(payload)
        try:
            responses = self.broker.search_batch(
                queries, thresholds, limit=limit
            )
        except ValueError as exc:  # e.g. thresholds/queries length mismatch
            raise HTTPError(400, str(exc)) from exc
        return Response(
            payload={
                "kind": "responses",
                "responses": [response_to_wire(r) for r in responses],
            }
        )
