"""Stdlib HTTP substrate shared by the engine server and the gateway.

The two serving roles differ only in their routes; everything an HTTP
service needs besides them lives here:

* :class:`ServingApp` — a route table plus the cross-cutting request
  policy: body-size limits, ``X-Repro-Deadline`` parsing and server-side
  enforcement (504 when the budget is gone, before *and* after the
  handler runs), draining behavior, in-flight tracking for graceful
  shutdown, and request/latency/error metrics.  Subclasses add routes
  via :meth:`add_routes` and health detail via :meth:`health_info`;
  ``GET /healthz`` and ``GET /metrics`` come for free.
* :class:`ServingServer` — a :class:`~http.server.ThreadingHTTPServer`
  wrapper owning the listen socket and the drain sequence: stop
  accepting, finish in-flight requests, snapshot the metrics one last
  time (``final_metrics``), close.  ``install_signal_handlers`` maps
  SIGTERM/SIGINT onto that sequence for CLI deployments.

Responses are JSON (except ``/metrics``, Prometheus text) and always
carry ``Content-Length``, so HTTP/1.1 keep-alive works and clients can
reuse connections.  Every response identifies the build via the
``Server`` and ``X-Repro-Version`` headers.
"""

from __future__ import annotations

import json
import logging
import math
import signal
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.obs.export import registry_to_prometheus
from repro.obs.registry import LATENCY_BUCKETS, MetricsRegistry
from repro.serving.deadlines import DEADLINE_HEADER, Deadline, deadline_scope
from repro.version import package_version

__all__ = ["HTTPError", "Response", "Route", "ServingApp", "ServingServer"]

log = logging.getLogger("repro.serving")

#: Default request body cap (1 MiB) — generous for queries, miserly for abuse.
DEFAULT_MAX_BODY = 1 << 20

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class HTTPError(Exception):
    """A request failure with a definite status code.

    Raised anywhere under :meth:`ServingApp.handle`; rendered as a JSON
    error body.  ``retry_after`` adds the ``Retry-After`` header (load
    shedding), ``close`` forces ``Connection: close``.
    """

    def __init__(
        self,
        status: int,
        message: str,
        *,
        retry_after: Optional[float] = None,
        close: bool = False,
    ):
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after
        self.close = close

    def to_response(self) -> "Response":
        headers = {}
        if self.retry_after is not None:
            # Retry-After is delta-seconds and integral per RFC 9110.
            # Round *up*: rounding 1.2s down to 1s invites the client back
            # before the window it was shed from has actually passed.
            headers["Retry-After"] = str(max(1, math.ceil(self.retry_after)))
        return Response(
            status=self.status,
            payload={"error": self.message, "status": self.status},
            headers=headers,
            close=self.close,
        )


@dataclass
class Response:
    """What a route handler returns; the handler layer does the framing."""

    status: int = 200
    payload: Optional[dict] = None  # JSON body (one of payload/text/raw)
    text: Optional[str] = None  # raw text body (/metrics)
    raw: Optional[bytes] = None  # binary body (columnar representatives)
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    close: bool = False

    def body_bytes(self) -> bytes:
        if self.raw is not None:
            return self.raw
        if self.text is not None:
            return self.text.encode("utf-8")
        if self.payload is not None:
            return json.dumps(self.payload).encode("utf-8")
        return b""


@dataclass(frozen=True)
class Route:
    """One (method, path) entry: the handler plus its drain policy."""

    handler: Callable[[Dict[str, str], Optional[dict]], Response]
    drain_ok: bool = False  # still served while draining (healthz, metrics)


class ServingApp:
    """Routes plus cross-cutting request policy; subclass per role.

    Args:
        registry: Metrics sink; a fresh :class:`MetricsRegistry` when
            omitted so ``/metrics`` always has something to export.
        max_body: Request body cap in bytes; larger requests get 413.
        default_deadline: Budget in seconds applied to requests that carry
            no ``X-Repro-Deadline`` header; ``None`` leaves them unbounded.
    """

    role = "app"

    def __init__(
        self,
        *,
        registry=None,
        max_body: int = DEFAULT_MAX_BODY,
        default_deadline: Optional[float] = None,
    ):
        if max_body < 1:
            raise ValueError(f"max_body must be >= 1, got {max_body!r}")
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be positive, got {default_deadline!r}"
            )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.max_body = max_body
        self.default_deadline = default_deadline
        self.draining = False
        self._inflight = 0
        self._idle = threading.Condition()
        self._routes: Dict[Tuple[str, str], Route] = {}
        self.route("GET", "/healthz", self._route_healthz, drain_ok=True)
        self.route("GET", "/metrics", self._route_metrics, drain_ok=True)
        self.add_routes()

    # -- subclass surface ----------------------------------------------------

    def add_routes(self) -> None:
        """Register role-specific routes (subclass hook)."""

    def health_info(self) -> dict:
        """Role-specific fields merged into the /healthz payload."""
        return {}

    def route(
        self,
        method: str,
        path: str,
        handler: Callable[[Dict[str, str], Optional[dict]], Response],
        *,
        drain_ok: bool = False,
    ) -> None:
        self._routes[(method, path)] = Route(handler=handler, drain_ok=drain_ok)

    # -- built-in routes -----------------------------------------------------

    def _route_healthz(self, params, payload) -> Response:
        info = {
            "status": "draining" if self.draining else "ok",
            "role": self.role,
            "version": package_version(),
        }
        info.update(self.health_info())
        # 503 while draining so load balancers stop routing here, while the
        # body still says why.
        return Response(status=503 if self.draining else 200, payload=info)

    def _route_metrics(self, params, payload) -> Response:
        return Response(
            text=registry_to_prometheus(self.registry),
            content_type=PROMETHEUS_CONTENT_TYPE,
        )

    # -- request policy ------------------------------------------------------

    def _metric_requests(self, path: str):
        return self.registry.counter(
            "serving.requests", labels={"app": self.role, "route": path}
        )

    def _metric_errors(self, status: int):
        return self.registry.counter(
            "serving.errors", labels={"app": self.role, "status": str(status)}
        )

    def _metric_seconds(self, path: str):
        return self.registry.histogram(
            "serving.request.seconds",
            buckets=LATENCY_BUCKETS,
            labels={"app": self.role, "route": path},
        )

    def _request_deadline(self, headers: Mapping[str, str]) -> Optional[Deadline]:
        raw = headers.get(DEADLINE_HEADER)
        if raw is None:
            if self.default_deadline is None:
                return None
            return Deadline(self.default_deadline)
        try:
            return Deadline.parse_header(raw)
        except ValueError as exc:
            raise HTTPError(400, f"bad {DEADLINE_HEADER} header: {exc}") from exc

    @staticmethod
    def _decode_body(method: str, body: bytes) -> Optional[dict]:
        if method != "POST":
            return None
        if not body:
            raise HTTPError(400, "POST body required")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HTTPError(400, f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise HTTPError(400, "body must be a JSON object")
        return payload

    def handle(
        self, method: str, path: str, headers: Mapping[str, str], body: bytes
    ) -> Response:
        """Full request policy around one route invocation; never raises."""
        split = urlsplit(path)
        started = time.perf_counter()
        self._metric_requests(split.path).inc()
        try:
            response = self._handle(method, split.path, split.query, headers, body)
        except HTTPError as err:
            self._metric_errors(err.status).inc()
            response = err.to_response()
        except Exception as exc:  # a route bug is a 500, never a dead thread
            log.exception("unhandled error serving %s %s", method, path)
            self._metric_errors(500).inc()
            response = Response(
                status=500,
                payload={"error": f"{type(exc).__name__}: {exc}", "status": 500},
                close=True,
            )
        self._metric_seconds(split.path).observe(time.perf_counter() - started)
        if self.draining:
            response.close = True
        return response

    def _handle(
        self,
        method: str,
        path: str,
        query: str,
        headers: Mapping[str, str],
        body: bytes,
    ) -> Response:
        route = self._routes.get((method, path))
        if route is None:
            known = any(p == path for __, p in self._routes)
            raise HTTPError(
                405 if known else 404,
                f"method {method} not allowed for {path}"
                if known
                else f"no such endpoint: {path}",
            )
        if self.draining and not route.drain_ok:
            raise HTTPError(503, "server is draining", close=True)
        deadline = self._request_deadline(headers)
        if deadline is not None and deadline.expired:
            raise HTTPError(504, "deadline exhausted before handling began")
        params = {k: values[-1] for k, values in parse_qs(query).items()}
        payload = self._decode_body(method, body)
        with self._track_inflight():
            with deadline_scope(deadline):
                response = self._invoke(route, params, payload, deadline)
        if deadline is not None and deadline.expired:
            raise HTTPError(504, "deadline exceeded while answering")
        return response

    def _invoke(
        self,
        route: Route,
        params: Dict[str, str],
        payload: Optional[dict],
        deadline: Optional[Deadline],
    ) -> Response:
        """Run the route handler (subclass hook — the gateway wraps this
        with admission control)."""
        return route.handler(params, payload)

    # -- drain support -------------------------------------------------------

    def _track_inflight(self):
        app = self

        class _Tracker:
            def __enter__(self):
                with app._idle:
                    app._inflight += 1
                return self

            def __exit__(self, *exc):
                with app._idle:
                    app._inflight -= 1
                    app._idle.notify_all()
                return False

        return _Tracker()

    def begin_drain(self) -> None:
        """Refuse new work; requests already in flight run to completion."""
        self.draining = True

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no request is being handled; False on timeout."""
        expires = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                remaining = None
                if expires is not None:
                    remaining = expires - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
            return True


class _AppHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, app: ServingApp):
        super().__init__(address, _AppRequestHandler)
        self.app = app


class _AppRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # -- framing -------------------------------------------------------------

    def version_string(self) -> str:  # the Server: header
        return f"repro-serving/{package_version()}"

    def log_message(self, fmt, *args):  # stdlib default prints to stderr
        log.debug("%s %s", self.address_string(), fmt % args)

    def _write_response(self, response: Response) -> None:
        body = response.body_bytes()
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Repro-Version", package_version())
        for name, value in response.headers.items():
            self.send_header(name, value)
        if response.close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        app: ServingApp = self.server.app
        try:
            if "chunked" in (self.headers.get("Transfer-Encoding") or ""):
                raise HTTPError(411, "chunked bodies unsupported; send "
                                     "Content-Length", close=True)
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                raise HTTPError(400, "bad Content-Length", close=True) from None
            if length < 0:
                raise HTTPError(400, "bad Content-Length", close=True)
            if length > app.max_body:
                # The body is refused unread, so the connection must close.
                raise HTTPError(
                    413,
                    f"body of {length} bytes exceeds limit of {app.max_body}",
                    close=True,
                )
            body = self.rfile.read(length) if length else b""
        except HTTPError as err:
            self._write_response(err.to_response())
            return
        response = app.handle(method, self.path, self.headers, body)
        try:
            self._write_response(response)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True  # client went away; nothing to do

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")


class ServingServer:
    """Owns the listen socket and lifecycle of one :class:`ServingApp`.

    Args:
        app: The role to serve.
        host: Bind address (loopback by default).
        port: TCP port; 0 asks the OS for a free one (read it back from
            :attr:`port` / :attr:`url`).
    """

    def __init__(self, app: ServingApp, host: str = "127.0.0.1", port: int = 0):
        self.app = app
        self._httpd = _AppHTTPServer((host, port), app)
        self.host, self.port = self._httpd.server_address[:2]
        self._serving = threading.Event()
        self._drained = threading.Event()
        self._drain_lock = threading.Lock()
        self._drain_started = False
        self.final_metrics: Optional[str] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- serving -------------------------------------------------------------

    def serve_forever(self) -> None:
        """Serve until :meth:`drain` (or shutdown) is called."""
        self._serving.set()
        try:
            self._httpd.serve_forever(poll_interval=0.05)
        finally:
            self._serving.clear()

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns once the loop is accepting."""
        thread = threading.Thread(
            target=self.serve_forever, name=f"repro-serve-{self.app.role}",
            daemon=True,
        )
        thread.start()
        self._serving.wait(timeout=5.0)
        return thread

    # -- graceful shutdown ---------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight, flush metrics.

        Returns True when every in-flight request completed within
        ``timeout`` (None = wait indefinitely).  Idempotent; concurrent
        callers all block until the first drain finishes.
        """
        with self._drain_lock:
            if self._drain_started:
                first = False
            else:
                self._drain_started = True
                first = True
        if not first:
            self._drained.wait()
            return self.final_metrics is not None
        # Refuse new work first (503 while the listener stays up, so callers
        # get a clean answer instead of a reset), let in-flight requests
        # finish, then stop the accept loop and close the socket.
        self.app.begin_drain()
        completed = self.app.wait_idle(timeout)
        if self._serving.is_set():
            self._httpd.shutdown()
        # The final flush: the last complete snapshot of every series,
        # available to the operator after the listener is gone.
        self.final_metrics = registry_to_prometheus(self.app.registry)
        self._httpd.server_close()
        self._drained.set()
        log.info(
            "drained %s (%scomplete)", self.app.role, "" if completed else "in"
        )
        return completed

    def install_signal_handlers(self, drain_timeout: Optional[float] = 30.0):
        """Map SIGTERM/SIGINT to a graceful drain (main thread only)."""

        def _on_signal(signum, frame):
            # Draining shuts the serve loop down, which a signal handler
            # running *in* that loop's thread cannot wait on — hand off.
            threading.Thread(
                target=self.drain, args=(drain_timeout,), daemon=True
            ).start()

        try:
            signal.signal(signal.SIGTERM, _on_signal)
            signal.signal(signal.SIGINT, _on_signal)
        except ValueError:  # not the main thread; caller drives drain itself
            log.debug("signal handlers unavailable off the main thread")

    def run(self, drain_timeout: Optional[float] = 30.0) -> bool:
        """Foreground serving for the CLI: serve, drain on signal, return
        True when the drain completed cleanly."""
        self.install_signal_handlers(drain_timeout)
        self.serve_forever()
        self._drained.wait()
        return self.app.wait_idle(0.0)
