"""One shard of a partitioned fleet, behind HTTP.

A shard worker owns a *slice* of the fleet: a columnar
:class:`~repro.metasearch.broker.MetasearchBroker` whose
:class:`~repro.representatives.columnar.FleetRepresentativeStore` holds
the representatives of the engines assigned to this shard (typically
loaded from an ``.npz`` bundle written by
:meth:`~repro.representatives.columnar.FleetRepresentativeStore.save_npz`).
The scatter-gather coordinator (:mod:`repro.serving.coordinator`) fans
each request out to every shard and merges the answers, so a shard never
sees the rest of the fleet — and never needs to: per-engine usefulness
estimates depend only on that engine's representative and the query, so
a slice estimates bit-identically to the full fleet.

:class:`ShardApp` exposes the two scatter phases plus slice shipping:

* ``POST /estimate`` — a *batch* of queries with per-query thresholds;
  returns one estimate row per query covering this shard's engines,
  computed through the broker's vectorized columnar path.
* ``POST /dispatch`` — a batch of ``{query, threshold, engines}``
  entries; forwards each query to the named engines (which must live on
  this shard) through the broker's dispatcher and returns per-engine
  hits, failure records, and latencies.  Selection is *not* applied
  here — the coordinator selects centrally on the merged estimate rows,
  so any policy behaves exactly as it would in one process.
* ``GET /slice`` — the shard's fleet slice as the columnar ``.npz``
  bundle (``application/octet-stream``), cached after the first build
  and invalidated when a delta mutates the slice; the ``X-Repro-Shard``
  header echoes the shard index.
* ``POST /delta`` — one :class:`~repro.fleet.delta.RepresentativeDelta`
  document (the canonical wire form) for an engine on this shard;
  applied through the broker's
  :meth:`~repro.metasearch.broker.MetasearchBroker.
  apply_representative_delta`, so the columnar slice mutates in place
  and only the affected cache entries are evicted.  A delta whose base
  version does not match the shard's resident representative is a 409 —
  the caller re-ships a snapshot.

The coordinator treats a dead shard as a set of per-engine failures,
so the shard's own error story stays simple: malformed requests are
400s, unknown engines are 400s, and anything else is the substrate's
generic 500.
"""

from __future__ import annotations

import io
import threading
from typing import List, Optional

from repro.fleet.delta import RepresentativeDelta
from repro.metasearch.broker import MetasearchBroker
from repro.obs.registry import OCCUPANCY_BUCKETS
from repro.serving.http import HTTPError, Response, ServingApp
from repro.serving.wire import (
    WireFormatError,
    encode_hits,
    estimate_to_wire,
    failure_to_wire,
    query_from_wire,
)

__all__ = ["ShardApp"]


class ShardApp(ServingApp):
    """Serve one fleet shard: batch estimation, targeted dispatch, slice.

    Args:
        broker: The shard's broker, holding this shard's engines and (for
            ``/slice``) a columnar fleet store.  Construct it with
            ``columnar=True`` or with a pre-built ``fleet=`` slice.
        shard_index: This shard's position in the coordinator's shard
            list; echoed in ``/healthz`` and the ``X-Repro-Shard`` header
            so a misconfigured topology is visible.
        max_batch: Queries accepted per ``/estimate`` request and entries
            per ``/dispatch`` request.
    """

    role = "shard"

    def __init__(
        self,
        broker: MetasearchBroker,
        *,
        shard_index: int = 0,
        max_batch: int = 256,
        **kwargs,
    ):
        if shard_index < 0:
            raise ValueError(f"shard_index must be >= 0, got {shard_index!r}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch!r}")
        self.broker = broker
        self.shard_index = shard_index
        self.max_batch = max_batch
        self._slice_lock = threading.Lock()
        self._slice_cache: Optional[bytes] = None
        super().__init__(**kwargs)
        self._m_estimates = self.registry.counter("serving.shard.estimates")
        self._m_dispatches = self.registry.counter("serving.shard.dispatches")
        self._m_deltas = self.registry.counter("serving.shard.deltas")
        # Occupancy of each /estimate RPC: front-door coalescing shows up
        # here as batches > 1 where per-request scatter would show all 1s.
        self._m_batch_occupancy = self.registry.histogram(
            "serving.shard.batch.occupancy", buckets=OCCUPANCY_BUCKETS
        )

    def add_routes(self) -> None:
        self.route("POST", "/estimate", self._route_estimate)
        self.route("POST", "/dispatch", self._route_dispatch)
        self.route("GET", "/slice", self._route_slice)
        self.route("POST", "/delta", self._route_delta)

    def health_info(self) -> dict:
        return {
            "shard": self.shard_index,
            "engines": self.broker.engine_names,
        }

    # -- request parsing -----------------------------------------------------

    def _parse_query(self, raw):
        try:
            return query_from_wire(raw)
        except WireFormatError as exc:
            raise HTTPError(400, f"bad query: {exc}") from exc

    def _parse_batch(self, payload: dict, name: str) -> list:
        raw = payload.get(name)
        if not isinstance(raw, list):
            raise HTTPError(400, f"{name!r} must be a list")
        if len(raw) > self.max_batch:
            raise HTTPError(
                413,
                f"{len(raw)} {name} exceed the shard batch limit of "
                f"{self.max_batch}",
            )
        return raw

    # -- routes --------------------------------------------------------------

    def _route_estimate(self, params, payload) -> Response:
        raw_queries = self._parse_batch(payload, "queries")
        queries = [self._parse_query(raw) for raw in raw_queries]
        raw_thresholds = payload.get("thresholds")
        try:
            if isinstance(raw_thresholds, list):
                thresholds: object = [float(t) for t in raw_thresholds]
            else:
                thresholds = float(raw_thresholds)
        except (TypeError, ValueError) as exc:
            raise HTTPError(400, f"bad thresholds: {exc}") from exc
        try:
            rows = self.broker.estimate_batch(queries, thresholds)
        except ValueError as exc:  # thresholds/queries length mismatch
            raise HTTPError(400, str(exc)) from exc
        self._m_estimates.inc(len(queries))
        self._m_batch_occupancy.observe(len(queries))
        return Response(
            payload={
                "kind": "shard.estimates",
                "shard": self.shard_index,
                "rows": [
                    [estimate_to_wire(e) for e in row] for row in rows
                ],
            }
        )

    def _route_dispatch(self, params, payload) -> Response:
        entries = self._parse_batch(payload, "entries")
        batches = []
        for entry in entries:
            if not isinstance(entry, dict):
                raise HTTPError(400, "each dispatch entry must be an object")
            query = self._parse_query(entry.get("query"))
            try:
                threshold = float(entry.get("threshold"))
            except (TypeError, ValueError) as exc:
                raise HTTPError(400, f"bad threshold: {exc}") from exc
            names = entry.get("engines")
            if not isinstance(names, list):
                raise HTTPError(400, "'engines' must be a list of names")
            calls = {}
            for raw_name in names:
                name = str(raw_name)
                try:
                    engine = self.broker.engine_of(name)
                except KeyError:
                    raise HTTPError(
                        400,
                        f"engine {name!r} is not on shard {self.shard_index}",
                    ) from None
                calls[name] = (
                    lambda engine=engine, q=query, t=threshold: engine.search(
                        q, t
                    )
                )
            batches.append(calls)
        reports = self.broker.dispatcher.dispatch_many(batches)
        self._m_dispatches.inc(len(entries))
        return Response(
            payload={
                "kind": "shard.dispatches",
                "shard": self.shard_index,
                "reports": [
                    {
                        "results": {
                            name: encode_hits(hits)
                            for name, hits in report.results.items()
                        },
                        "failures": [
                            failure_to_wire(f) for f in report.failures
                        ],
                        "latencies": {
                            name: float(v)
                            for name, v in report.latencies.items()
                        },
                    }
                    for report in reports
                ],
            }
        )

    def _slice_bytes(self) -> bytes:
        """The fleet slice as ``.npz`` bytes, cached until a ``/delta``
        mutates the slice (which drops the cache)."""
        with self._slice_lock:
            if self._slice_cache is None:
                if self.broker.fleet is None:
                    raise HTTPError(
                        404, "this shard's broker has no columnar fleet"
                    )
                buffer = io.BytesIO()
                self.broker.fleet.save_npz(buffer)
                self._slice_cache = buffer.getvalue()
            return self._slice_cache

    def _route_slice(self, params, payload) -> Response:
        return Response(
            raw=self._slice_bytes(),
            content_type="application/octet-stream",
            headers={"X-Repro-Shard": str(self.shard_index)},
        )

    def _route_delta(self, params, payload) -> Response:
        try:
            delta = RepresentativeDelta.from_json_dict(payload)
        except (KeyError, TypeError, ValueError) as exc:
            raise HTTPError(400, f"bad delta: {exc}") from exc
        try:
            report = self.broker.apply_representative_delta(delta)
        except KeyError:
            raise HTTPError(
                400,
                f"engine {delta.name!r} is not on shard {self.shard_index}",
            ) from None
        except ValueError as exc:
            # Base version / document count mismatch: the caller's view of
            # this shard is stale — re-ship a snapshot instead.
            raise HTTPError(409, f"delta conflict: {exc}") from exc
        with self._slice_lock:
            self._slice_cache = None
        self._m_deltas.inc()
        return Response(
            payload={
                "kind": "shard.delta",
                "shard": self.shard_index,
                "engine": report.name,
                "to_version": report.to_version,
                "mode": report.mode,
                "cache_evicted": report.cache_evicted,
                "cache_retained": report.cache_retained,
                "polycache_evicted": report.polycache_evicted,
                "polycache_retained": report.polycache_retained,
            }
        )
