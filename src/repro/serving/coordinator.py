"""Scatter-gather over a sharded fleet.

:class:`ShardedFleet` makes N shard workers (:mod:`repro.serving.
shard_worker`) look like one :class:`~repro.metasearch.broker.
MetasearchBroker`: it implements the broker surface the gateway consumes
(``engine_names``, ``estimate_all``, ``estimate_batch``, ``search``,
``search_batch``), so :class:`CoordinatorApp` is the ordinary
:class:`~repro.serving.gateway.GatewayApp` pointed at it — same wire
schema, same admission control, same drain story.

The merge is **bit-exact** by construction, not by luck:

* Per-engine usefulness estimates depend only on that engine's
  representative and the query — never on the rest of the fleet — so a
  shard computes exactly the numbers the in-process broker would.
* An estimate row is engines sorted by ``sort_key = (-nodoc, -avgsim,
  engine)``.  Engine names are unique, so the key is a *total* order and
  sorting the concatenation of per-shard rows yields the identical row
  the in-process broker produces (stability never has to break a tie).
* Selection runs *centrally* on that merged row, so any policy — the
  paper's threshold, top-k, anything rank-dependent — sees exactly the
  input it would see in one process.
* ``merge_hits`` is a global sort under a total key, so merging each
  shard's per-engine hit lists equals merging the same lists locally.

Dispatch is two-phase: scatter the query batch to every shard's
``/estimate``, merge and select, then scatter ``{query, threshold,
engines}`` entries to only the shards owning selected engines.  Both
phases fan out on a :class:`~repro.metasearch.dispatch.
ConcurrentDispatcher`, reusing its deadline/retry/degradation machinery
with shards in the engine seat.  A dead shard degrades, never sinks the
query: the coordinator knows which engines the shard owned (from
``/healthz`` at :meth:`ShardedFleet.attach` time) and records one
:class:`~repro.metasearch.dispatch.EngineFailure` per affected engine,
while the surviving shards' answers merge exactly as the in-process
broker restricted to the surviving engines would.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Union

from repro.corpus.query import Query
from repro.engine.results import SearchHit
from repro.metasearch.broker import MetasearchBroker, MetasearchResponse
from repro.metasearch.dispatch import ConcurrentDispatcher, EngineFailure
from repro.metasearch.merge import merge_hits
from repro.metasearch.selection import (
    EstimatedUsefulness,
    SelectionPolicy,
    ThresholdPolicy,
)
from repro.obs.registry import NULL_REGISTRY, OCCUPANCY_BUCKETS
from repro.obs.trace import QueryTrace
from repro.serving.gateway import GatewayApp
from repro.serving.remote_engine import RemoteServingError, _HTTPJsonClient
from repro.serving.wire import (
    WireFormatError,
    decode_hits,
    estimate_from_wire,
    failure_from_wire,
    query_to_wire,
)

__all__ = ["CoordinatorApp", "ShardedFleet"]


class _ShardHandle:
    """One attached shard: its client plus the engine ownership map."""

    __slots__ = ("name", "url", "client", "engines", "index")

    def __init__(self, name: str, url: str, client: _HTTPJsonClient):
        self.name = name
        self.url = url
        self.client = client
        self.engines: List[str] = []
        self.index: int = -1

    def __repr__(self) -> str:
        return f"_ShardHandle({self.name} @ {self.url}, {len(self.engines)} engines)"


class ShardedFleet:
    """A fleet of shard workers behind the broker interface.

    Args:
        shard_urls: One ``http://host:port`` per shard worker.
        policy: Selection policy applied centrally to the merged estimate
            rows; the paper's threshold criterion by default.
        timeout: Scatter deadline in seconds per fan-out (both phases);
            a shard that has not answered by then is treated as dead for
            that request.  ``None`` waits indefinitely.
        retries: Extra attempts per shard call after one raises.
        backoff: Base retry backoff in seconds (jittered and clamped to
            the remaining scatter/ambient deadline by the dispatcher).
        shard_timeout: Per-request socket budget for shard calls.
        registry: Metrics sink; the shared no-op registry by default.
    """

    def __init__(
        self,
        shard_urls: Sequence[str],
        *,
        policy: Optional[SelectionPolicy] = None,
        timeout: Optional[float] = None,
        retries: int = 0,
        backoff: float = 0.05,
        shard_timeout: Optional[float] = 30.0,
        registry=None,
    ):
        if not shard_urls:
            raise ValueError("shard_urls must name at least one shard")
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.policy = policy or ThresholdPolicy()
        self._shards = [
            _ShardHandle(
                f"shard{i}", url, _HTTPJsonClient(url, timeout=shard_timeout)
            )
            for i, url in enumerate(shard_urls)
        ]
        # Shards sit in the dispatcher's engine seat: per-shard deadline
        # enforcement, retry with clamped backoff, and degradation-not-
        # failure all come from the same machinery engine calls use.
        self.dispatcher = ConcurrentDispatcher(
            workers=max(2, len(self._shards)),
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            registry=self.registry,
        )
        self._owner: Dict[str, _ShardHandle] = {}
        self._m_searches = self.registry.counter("coordinator.searches")
        self._m_degraded = self.registry.counter("coordinator.searches.degraded")
        self._m_shard_failures = self.registry.counter(
            "coordinator.shard.failures"
        )
        # Scatter accounting: one "fanout" is one scatter-gather round
        # (a batch of queries to all/owning shards); "rpcs" counts the
        # per-shard calls it cost.  With front-door coalescing these are
        # the proof that a whole window costs one RPC per shard —
        # rpcs/fanouts stays at the shard count while queries/fanout
        # grows with window occupancy.
        self._m_fanouts = {
            phase: self.registry.counter(
                "coordinator.scatter.fanouts", labels={"phase": phase}
            )
            for phase in ("estimate", "dispatch")
        }
        self._m_rpcs = {
            phase: self.registry.counter(
                "coordinator.scatter.rpcs", labels={"phase": phase}
            )
            for phase in ("estimate", "dispatch")
        }
        self._m_fanout_queries = self.registry.histogram(
            "coordinator.scatter.batch.queries", buckets=OCCUPANCY_BUCKETS
        )

    # -- attachment ----------------------------------------------------------

    def attach(self, timeout: float = 10.0, interval: float = 0.05) -> "ShardedFleet":
        """Wait for every shard's ``/healthz`` and learn which engines it
        owns — the map that turns a dead shard into per-engine failures.

        Returns ``self`` so construction chains:
        ``ShardedFleet(urls).attach()``.
        """
        deadline = time.monotonic() + timeout
        for shard in self._shards:
            while True:
                try:
                    info = shard.client.request("GET", "/healthz")
                except RemoteServingError as exc:
                    if time.monotonic() >= deadline:
                        raise RemoteServingError(
                            f"shard at {shard.url} not ready within "
                            f"{timeout}s: {exc}"
                        ) from exc
                    time.sleep(interval)
                    continue
                shard.engines = [str(n) for n in info.get("engines", [])]
                shard.index = int(info.get("shard", -1))
                break
        self._owner = {}
        for shard in self._shards:
            for name in shard.engines:
                if name in self._owner:
                    raise ValueError(
                        f"engine {name!r} is owned by both "
                        f"{self._owner[name].url} and {shard.url}"
                    )
                self._owner[name] = shard
        return self

    @property
    def engine_names(self) -> List[str]:
        return sorted(self._owner)

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def __len__(self) -> int:
        return len(self._owner)

    def shards_info(self) -> List[dict]:
        return [
            {
                "index": shard.index,
                "url": shard.url,
                "engines": len(shard.engines),
            }
            for shard in self._shards
        ]

    def close(self) -> None:
        for shard in self._shards:
            shard.client.close()

    # -- live-fleet delta propagation ----------------------------------------

    def apply_delta(self, delta) -> dict:
        """Ship one representative delta to the shard owning its engine.

        The delta travels in its canonical wire form to exactly one
        shard's ``POST /delta`` — the fan-out is a *routing* decision,
        not a broadcast, because each engine's representative lives on
        one shard only.  Returns the shard's apply report (mode, cache
        eviction counts, new version).

        Raises:
            KeyError: No attached shard owns ``delta.name``.
            RemoteServingError: The shard rejected the delta (including
                the 409 base-version conflict — callers should fall back
                to re-shipping a snapshot) or answered malformed JSON.
        """
        shard = self._owner.get(delta.name)
        if shard is None:
            raise KeyError(
                f"engine {delta.name!r} is not owned by any attached shard"
            )
        answer = shard.client.request("POST", "/delta", delta.to_json_dict())
        if answer.get("kind") != "shard.delta":
            raise RemoteServingError(
                f"{shard.url} answered kind {answer.get('kind')!r} to /delta"
            )
        return answer

    # -- shard RPC -----------------------------------------------------------

    def _shard_estimates(
        self, shard: _ShardHandle, payload: dict, n_queries: int
    ) -> List[List[EstimatedUsefulness]]:
        answer = shard.client.request("POST", "/estimate", payload)
        try:
            if answer.get("kind") != "shard.estimates":
                raise WireFormatError(
                    f"expected kind 'shard.estimates', got {answer.get('kind')!r}"
                )
            rows = [
                [estimate_from_wire(e) for e in row]
                for row in answer["rows"]
            ]
        except (KeyError, TypeError, WireFormatError) as exc:
            raise RemoteServingError(
                f"{shard.url} returned malformed estimates: {exc}"
            ) from exc
        if len(rows) != n_queries:
            raise RemoteServingError(
                f"{shard.url} answered {len(rows)} estimate rows for "
                f"{n_queries} queries"
            )
        return rows

    def _shard_dispatch(
        self, shard: _ShardHandle, entries: List[dict]
    ) -> List[tuple]:
        answer = shard.client.request(
            "POST", "/dispatch", {"entries": entries}
        )
        try:
            if answer.get("kind") != "shard.dispatches":
                raise WireFormatError(
                    f"expected kind 'shard.dispatches', got {answer.get('kind')!r}"
                )
            reports = []
            for report in answer["reports"]:
                reports.append(
                    (
                        {
                            str(name): list(decode_hits(rows))
                            for name, rows in report["results"].items()
                        },
                        [failure_from_wire(f) for f in report["failures"]],
                        {
                            str(name): float(v)
                            for name, v in report["latencies"].items()
                        },
                    )
                )
        except (KeyError, TypeError, WireFormatError) as exc:
            raise RemoteServingError(
                f"{shard.url} returned malformed dispatch reports: {exc}"
            ) from exc
        if len(reports) != len(entries):
            raise RemoteServingError(
                f"{shard.url} answered {len(reports)} dispatch reports for "
                f"{len(entries)} entries"
            )
        return reports

    def _shard_failures(
        self, shard: _ShardHandle, failure: EngineFailure, engines: List[str]
    ) -> List[EngineFailure]:
        """Translate one shard-level failure into per-engine records — the
        coordinator's callers reason about engines, not topology."""
        self._m_shard_failures.inc()
        return [
            EngineFailure(
                engine=name,
                kind=failure.kind,
                attempts=failure.attempts,
                elapsed=failure.elapsed,
                message=f"shard {shard.index} at {shard.url}: {failure.message}",
            )
            for name in engines
        ]

    # -- phase 1: scatter estimation -----------------------------------------

    def _scatter_estimates(
        self, queries: List[Query], per_query: List[float]
    ) -> tuple:
        """Fan ``/estimate`` to every shard; returns ``(rows, failures)``.

        Each returned row is the merged, sorted estimate row over every
        *answering* shard's engines; ``failures`` carries one per-engine
        record for each engine whose shard did not answer.
        """
        payload = {
            "queries": [query_to_wire(q) for q in queries],
            "thresholds": per_query,
        }
        calls = {
            shard.name: (
                lambda shard=shard: self._shard_estimates(
                    shard, payload, len(queries)
                )
            )
            for shard in self._shards
        }
        self._m_fanouts["estimate"].inc()
        self._m_rpcs["estimate"].inc(len(calls))
        self._m_fanout_queries.observe(len(queries))
        report = self.dispatcher.dispatch(calls)
        rows: List[List[EstimatedUsefulness]] = [[] for __ in queries]
        for shard in self._shards:
            shard_rows = report.results.get(shard.name)
            if shard_rows is None:
                continue
            for row, shard_row in zip(rows, shard_rows):
                row.extend(shard_row)
        for row in rows:
            # sort_key is a total order (unique engine names), so sorting
            # the concatenation reproduces the in-process row exactly.
            row.sort(key=lambda e: e.sort_key)
        by_name = {shard.name: shard for shard in self._shards}
        failures: List[EngineFailure] = []
        for failure in report.failures:
            shard = by_name[failure.engine]
            failures.extend(self._shard_failures(shard, failure, shard.engines))
        return rows, failures

    def estimate_all(
        self, query: Query, threshold: float
    ) -> List[EstimatedUsefulness]:
        """Usefulness estimate for every engine in the fleet, best first."""
        rows, __ = self._scatter_estimates([query], [float(threshold)])
        return rows[0]

    def estimate_batch(
        self,
        queries: Sequence[Query],
        thresholds: Union[float, Sequence[float]],
    ) -> List[List[EstimatedUsefulness]]:
        queries = list(queries)
        per_query = MetasearchBroker._broadcast_thresholds(queries, thresholds)
        rows, __ = self._scatter_estimates(queries, per_query)
        return rows

    def select(self, query: Query, threshold: float) -> List[str]:
        return self.policy.select(self.estimate_all(query, threshold))

    # -- phase 2: scatter dispatch, gather, merge ----------------------------

    def _scatter_dispatch(
        self,
        queries: List[Query],
        per_query: List[float],
        invoked_lists: List[List[str]],
    ) -> tuple:
        """Fan ``/dispatch`` to the shards owning invoked engines.

        Returns per-query ``(hits, failure_map, latencies)`` triples,
        where ``failure_map`` maps engine name to its failure record.
        """
        entries_by_shard: Dict[str, List[dict]] = {}
        meta_by_shard: Dict[str, List[tuple]] = {}
        for i, (query, threshold, invoked) in enumerate(
            zip(queries, per_query, invoked_lists)
        ):
            by_shard: Dict[str, List[str]] = {}
            for name in invoked:
                by_shard.setdefault(self._owner[name].name, []).append(name)
            wire_query = query_to_wire(query)
            for shard_name, names in by_shard.items():
                entries_by_shard.setdefault(shard_name, []).append(
                    {
                        "query": wire_query,
                        "threshold": float(threshold),
                        "engines": names,
                    }
                )
                meta_by_shard.setdefault(shard_name, []).append((i, names))
        by_name = {shard.name: shard for shard in self._shards}
        calls = {
            shard_name: (
                lambda shard=by_name[shard_name], entries=entries: (
                    self._shard_dispatch(shard, entries)
                )
            )
            for shard_name, entries in entries_by_shard.items()
        }
        if calls:
            self._m_fanouts["dispatch"].inc()
            self._m_rpcs["dispatch"].inc(len(calls))
        report = self.dispatcher.dispatch(calls)
        results: List[Dict[str, List[SearchHit]]] = [{} for __ in queries]
        failure_maps: List[Dict[str, EngineFailure]] = [{} for __ in queries]
        latencies: List[Dict[str, float]] = [{} for __ in queries]
        shard_failures = {f.engine: f for f in report.failures}
        for shard_name, meta in meta_by_shard.items():
            shard = by_name[shard_name]
            shard_reports = report.results.get(shard_name)
            if shard_reports is None:
                failure = shard_failures[shard_name]
                elapsed = report.latencies.get(shard_name, failure.elapsed)
                for i, names in meta:
                    for record in self._shard_failures(shard, failure, names):
                        failure_maps[i][record.engine] = record
                        latencies[i][record.engine] = elapsed
                continue
            for (i, names), (hits_by_engine, entry_failures, entry_latencies) in zip(
                meta, shard_reports
            ):
                results[i].update(hits_by_engine)
                for record in entry_failures:
                    failure_maps[i][record.engine] = record
                latencies[i].update(entry_latencies)
        return results, failure_maps, latencies

    def _assemble(
        self,
        invoked: List[str],
        estimates: List[EstimatedUsefulness],
        est_failures: List[EngineFailure],
        results: Dict[str, List[SearchHit]],
        failure_map: Dict[str, EngineFailure],
        engine_latencies: Dict[str, float],
        limit: Optional[int],
        trace: QueryTrace,
    ) -> MetasearchResponse:
        for name in invoked:
            trace.add(
                f"dispatch:{name}",
                engine_latencies.get(name, 0.0),
                ok=name not in failure_map,
            )
        with trace.span("merge") as span:
            hits = merge_hits(
                [results[name] for name in invoked if name in results],
                limit=limit,
            )
            span.metadata["hits"] = len(hits)
        failures = list(est_failures)
        failures.extend(
            failure_map[name] for name in invoked if name in failure_map
        )
        response = MetasearchResponse(
            hits=hits,
            invoked=invoked,
            estimates=estimates,
            failures=failures,
            latencies={
                name: engine_latencies[name]
                for name in invoked
                if name in engine_latencies
            },
            trace=trace,
        )
        self._m_searches.inc()
        if response.degraded:
            self._m_degraded.inc()
        return response

    def search(
        self,
        query: Query,
        threshold: float,
        limit: Optional[int] = None,
    ) -> MetasearchResponse:
        """Estimate, select, dispatch, merge — across the shard fleet."""
        responses = self.search_batch([query], float(threshold), limit=limit)
        return responses[0]

    def search_batch(
        self,
        queries: Sequence[Query],
        thresholds: Union[float, Sequence[float]],
        limit: Optional[int] = None,
    ) -> List[MetasearchResponse]:
        """The full pipeline for a batch: one estimate scatter, one
        dispatch scatter, per-query responses equal to the in-process
        broker's (restricted to the engines of answering shards)."""
        queries = list(queries)
        per_query = MetasearchBroker._broadcast_thresholds(queries, thresholds)
        traces = [QueryTrace() for __ in queries]

        est_start = time.perf_counter()
        rows, est_failures = self._scatter_estimates(queries, per_query)
        est_elapsed = time.perf_counter() - est_start
        shared = est_elapsed / len(queries) if queries else 0.0
        for trace in traces:
            trace.add("estimate", shared, engines=len(self._owner))

        invoked_lists: List[List[str]] = []
        for estimates, trace in zip(rows, traces):
            with trace.span("select") as span:
                invoked = self.policy.select(estimates)
                span.metadata["selected"] = len(invoked)
            invoked_lists.append(invoked)

        results, failure_maps, latencies = self._scatter_dispatch(
            queries, per_query, invoked_lists
        )
        return [
            self._assemble(
                invoked,
                estimates,
                est_failures,
                results[i],
                failure_maps[i],
                latencies[i],
                limit,
                trace,
            )
            for i, (invoked, estimates, trace) in enumerate(
                zip(invoked_lists, rows, traces)
            )
        ]

    def __repr__(self) -> str:
        return (
            f"ShardedFleet({len(self._shards)} shards, "
            f"{len(self._owner)} engines)"
        )


class CoordinatorApp(GatewayApp):
    """The gateway app served over a :class:`ShardedFleet` backend.

    Same routes, admission control, and wire schema as
    :class:`~repro.serving.gateway.GatewayApp` — clients cannot tell a
    coordinator from a single-broker gateway except by ``/healthz``,
    which adds the shard topology.
    """

    role = "coordinator"

    def __init__(self, fleet: ShardedFleet, **kwargs):
        super().__init__(fleet, **kwargs)

    @property
    def fleet(self) -> ShardedFleet:
        return self.broker

    def health_info(self) -> dict:
        info = super().health_info()
        info["shards"] = self.fleet.shards_info()
        return info
