"""HTTP front for one local :class:`~repro.engine.SearchEngine`.

The paper's architecture has each search engine answering two remote
calls: serve a query, and publish the database representative the broker
estimates from.  :class:`EngineApp` exposes exactly those over the wire:

* ``POST /search`` — ``{"query": <wire query>, "threshold": t}`` →
  the engine's hits, best first.
* ``POST /max_similarity`` — the oracle call used by ``true_selection``.
* ``GET /representative`` — the engine's representative, *versioned by
  document count* so a subscribing broker can tell how stale its copy is
  without re-downloading (the propagation policy of
  :class:`~repro.metasearch.protocol.SubscribingBroker`, over HTTP).
  ``?quantize=256`` ships the one-byte form (~4 bytes/term, Section 3.2);
  ``?format=npz`` ships the columnar binary form
  (:meth:`~repro.representatives.columnar.ColumnarRepresentative.save_npz`)
  as ``application/octet-stream`` with the version echoed in the
  ``X-Repro-Representative-Version`` header — no JSON decode, no float
  text round-trip, directly loadable into a broker's fleet store.

The representative is built lazily and cached per version: rebuilding is
the expensive call a deployment batches, and repeated ``GET``\\ s at the
same version must not repeat the work.

:class:`LiveEngineApp` wraps a mutable
:class:`~repro.fleet.live.LiveEngineServer` and adds the live-fleet
protocol on top of the same engine surface:

* ``POST /mutate`` — ``{"add": [<documents>], "remove": [<doc ids>]}``
  mutates the corpus; each non-empty list is one versioned mutation
  whose delta lands in the server's replay log.
* ``GET /representative/delta?since=v`` — the composed
  :class:`~repro.fleet.delta.RepresentativeDelta` from version ``v`` to
  now, or the full ``representative.snapshot`` payload when ``v`` has
  been compacted out of the log (callers discriminate on ``kind``).

Versions here are *mutation counters*, not document counts — a remove
followed by an add leaves ``n_documents`` unchanged but must still be
visible to a syncing broker.
"""

from __future__ import annotations

import io
import threading
from typing import Optional, Tuple

from repro.corpus.document import Document
from repro.engine.search_engine import SearchEngine
from repro.fleet.live import LiveEngineServer
from repro.representatives.builder import build_representative
from repro.representatives.columnar import ColumnarRepresentative
from repro.representatives.representative import DatabaseRepresentative
from repro.serving.http import HTTPError, Response, ServingApp
from repro.serving.wire import (
    WireFormatError,
    encode_hits,
    query_from_wire,
    representative_to_wire,
)

__all__ = ["EngineApp", "LiveEngineApp"]


class EngineApp(ServingApp):
    """Serve one search engine over HTTP.

    Args:
        engine: The engine to expose.  Its ``name`` is the routing key
            brokers register it under.
        registry: Metrics sink (a fresh registry when omitted).
        max_body: Request body cap in bytes.
        default_deadline: Budget applied to requests without an
            ``X-Repro-Deadline`` header.
    """

    role = "engine"

    def __init__(self, engine: SearchEngine, **kwargs):
        self.engine = engine
        self._rep_lock = threading.Lock()
        self._rep_cache: Optional[Tuple[int, DatabaseRepresentative]] = None
        self._npz_cache: Optional[Tuple[int, bytes]] = None
        super().__init__(**kwargs)
        self._m_searches = self.registry.counter("serving.engine.searches")
        self._m_snapshots = self.registry.counter("serving.engine.snapshots")

    def add_routes(self) -> None:
        self.route("POST", "/search", self._route_search)
        self.route("POST", "/max_similarity", self._route_max_similarity)
        self.route("GET", "/representative", self._route_representative)

    def health_info(self) -> dict:
        return {
            "engine": self.engine.name,
            "documents": self.engine.n_documents,
        }

    # -- request parsing -----------------------------------------------------

    def _parse_query(self, payload: dict):
        try:
            return query_from_wire(payload["query"])
        except KeyError:
            raise HTTPError(400, "payload missing required field 'query'") from None
        except WireFormatError as exc:
            raise HTTPError(400, f"bad query: {exc}") from exc

    @staticmethod
    def _parse_threshold(payload: dict) -> float:
        try:
            return float(payload["threshold"])
        except KeyError:
            raise HTTPError(
                400, "payload missing required field 'threshold'"
            ) from None
        except (TypeError, ValueError) as exc:
            raise HTTPError(400, f"bad threshold: {exc}") from exc

    # -- routes --------------------------------------------------------------

    def _route_search(self, params, payload) -> Response:
        query = self._parse_query(payload)
        threshold = self._parse_threshold(payload)
        hits = self.engine.search(query, threshold)
        self._m_searches.inc()
        return Response(
            payload={
                "kind": "hits",
                "engine": self.engine.name,
                "hits": encode_hits(hits),
            }
        )

    def _route_max_similarity(self, params, payload) -> Response:
        query = self._parse_query(payload)
        return Response(
            payload={
                "kind": "max_similarity",
                "engine": self.engine.name,
                "value": float(self.engine.max_similarity(query)),
            }
        )

    def _representative(self) -> Tuple[int, DatabaseRepresentative]:
        """The current representative, rebuilt only when the version moved."""
        version = self.engine.n_documents
        with self._rep_lock:
            if self._rep_cache is None or self._rep_cache[0] != version:
                self._rep_cache = (version, build_representative(self.engine))
                self._m_snapshots.inc()
            return self._rep_cache

    def _npz_snapshot(self) -> Tuple[int, bytes]:
        """The columnar binary form, cached per version like the dict form."""
        version, representative = self._representative()
        with self._rep_lock:
            if self._npz_cache is None or self._npz_cache[0] != version:
                buffer = io.BytesIO()
                ColumnarRepresentative.from_representative(
                    representative
                ).save_npz(buffer)
                self._npz_cache = (version, buffer.getvalue())
            return self._npz_cache

    def _route_representative(self, params, payload) -> Response:
        fmt = params.get("format", "json")
        if fmt not in ("json", "npz"):
            raise HTTPError(
                400, f"unknown representative format {fmt!r} (json or npz)"
            )
        if fmt == "npz":
            if params.get("quantize") is not None:
                raise HTTPError(
                    400, "quantize is not supported with format=npz"
                )
            version, blob = self._npz_snapshot()
            return Response(
                raw=blob,
                content_type="application/octet-stream",
                headers={"X-Repro-Representative-Version": str(version)},
            )
        quantize: Optional[int] = None
        raw = params.get("quantize")
        if raw is not None:
            try:
                quantize = int(raw)
            except ValueError as exc:
                raise HTTPError(400, f"bad quantize parameter: {exc}") from exc
            if quantize < 1:
                raise HTTPError(
                    400, f"quantize must be >= 1, got {quantize}"
                )
        version, representative = self._representative()
        return Response(
            payload={
                "kind": "representative.snapshot",
                "name": self.engine.name,
                "version": version,
                "representative": representative_to_wire(
                    representative, quantize=quantize
                ),
            }
        )


class LiveEngineApp(EngineApp):
    """Serve one mutable :class:`~repro.fleet.live.LiveEngineServer`.

    All of :class:`EngineApp`'s routes work unchanged (the live server is
    duck-compatible with a search engine), plus the mutation and delta
    endpoints of the live-fleet protocol.  ``/representative`` versions
    are the server's mutation counter rather than the document count, and
    the representative itself comes from the server's incrementally
    maintained canonical snapshot — no rebuild per ``GET``.
    """

    role = "engine"

    def __init__(self, server: LiveEngineServer, **kwargs):
        self.server = server
        self._last_snapshot_version: Optional[int] = None
        super().__init__(server, **kwargs)
        self._m_mutations = self.registry.counter("serving.engine.mutations")
        self._m_deltas = self.registry.counter("serving.engine.deltas")
        self._m_delta_fallbacks = self.registry.counter(
            "serving.engine.delta.fallbacks"
        )

    def add_routes(self) -> None:
        super().add_routes()
        self.route("POST", "/mutate", self._route_mutate)
        self.route("GET", "/representative/delta", self._route_delta)

    def health_info(self) -> dict:
        info = super().health_info()
        info["live"] = True
        info["version"] = self.server.version
        return info

    def _representative(self) -> Tuple[int, DatabaseRepresentative]:
        """The server's maintained canonical snapshot — never rebuilt here."""
        with self._rep_lock:
            snapshot = self.server.snapshot()
            if self._last_snapshot_version != snapshot.version:
                self._last_snapshot_version = snapshot.version
                self._m_snapshots.inc()
            return snapshot.version, snapshot.representative

    # -- live-fleet routes ---------------------------------------------------

    @staticmethod
    def _parse_document(raw) -> Document:
        if not isinstance(raw, dict):
            raise HTTPError(400, "each added document must be an object")
        doc_id = raw.get("doc_id")
        terms = raw.get("terms")
        if not isinstance(doc_id, str) or not doc_id:
            raise HTTPError(400, "added document missing a 'doc_id' string")
        if not isinstance(terms, list) or not all(
            isinstance(t, str) for t in terms
        ):
            raise HTTPError(
                400, f"document {doc_id!r} needs 'terms': a list of strings"
            )
        text = raw.get("text")
        if text is not None and not isinstance(text, str):
            raise HTTPError(400, f"document {doc_id!r} has a non-string text")
        try:
            return Document(doc_id=doc_id, terms=list(terms), text=text)
        except ValueError as exc:
            raise HTTPError(400, f"bad document {doc_id!r}: {exc}") from exc

    def _route_mutate(self, params, payload) -> Response:
        raw_remove = payload.get("remove", [])
        raw_add = payload.get("add", [])
        if not isinstance(raw_remove, list) or not all(
            isinstance(d, str) for d in raw_remove
        ):
            raise HTTPError(400, "'remove' must be a list of doc id strings")
        if not isinstance(raw_add, list):
            raise HTTPError(400, "'add' must be a list of documents")
        documents = [self._parse_document(raw) for raw in raw_add]
        with self._rep_lock:
            try:
                if raw_remove:
                    self.server.remove_documents(raw_remove)
                    self._m_mutations.inc()
                if documents:
                    self.server.add_documents(documents)
                    self._m_mutations.inc()
            except (KeyError, ValueError) as exc:
                raise HTTPError(400, f"bad mutation: {exc}") from exc
            # The dict representative moved; drop the stale columnar blob.
            self._npz_cache = None
        return Response(
            payload={
                "kind": "engine.mutated",
                "engine": self.server.name,
                "version": self.server.version,
                "documents": self.server.n_documents,
                "removed": len(raw_remove),
                "added": len(documents),
            }
        )

    def _route_delta(self, params, payload) -> Response:
        raw_since = params.get("since")
        since: Optional[int] = None
        if raw_since is not None:
            try:
                since = int(raw_since)
            except ValueError as exc:
                raise HTTPError(400, f"bad since parameter: {exc}") from exc
            if since < 0 or since > self.server.version:
                raise HTTPError(
                    400,
                    f"since={since} outside [0, {self.server.version}]",
                )
        with self._rep_lock:
            result = self.server.sync_representative(since=since)
        if hasattr(result, "to_json_dict"):  # a RepresentativeDelta
            self._m_deltas.inc()
            return Response(payload=result.to_json_dict())
        # Compacted past ``since`` (or no ``since``): full snapshot.
        if since is not None:
            self._m_delta_fallbacks.inc()
        return Response(
            payload={
                "kind": "representative.snapshot",
                "name": self.server.name,
                "version": result.version,
                "representative": representative_to_wire(
                    result.representative
                ),
            }
        )
