"""HTTP front for one local :class:`~repro.engine.SearchEngine`.

The paper's architecture has each search engine answering two remote
calls: serve a query, and publish the database representative the broker
estimates from.  :class:`EngineApp` exposes exactly those over the wire:

* ``POST /search`` — ``{"query": <wire query>, "threshold": t}`` →
  the engine's hits, best first.
* ``POST /max_similarity`` — the oracle call used by ``true_selection``.
* ``GET /representative`` — the engine's representative, *versioned by
  document count* so a subscribing broker can tell how stale its copy is
  without re-downloading (the propagation policy of
  :class:`~repro.metasearch.protocol.SubscribingBroker`, over HTTP).
  ``?quantize=256`` ships the one-byte form (~4 bytes/term, Section 3.2);
  ``?format=npz`` ships the columnar binary form
  (:meth:`~repro.representatives.columnar.ColumnarRepresentative.save_npz`)
  as ``application/octet-stream`` with the version echoed in the
  ``X-Repro-Representative-Version`` header — no JSON decode, no float
  text round-trip, directly loadable into a broker's fleet store.

The representative is built lazily and cached per version: rebuilding is
the expensive call a deployment batches, and repeated ``GET``\\ s at the
same version must not repeat the work.
"""

from __future__ import annotations

import io
import threading
from typing import Optional, Tuple

from repro.engine.search_engine import SearchEngine
from repro.representatives.builder import build_representative
from repro.representatives.columnar import ColumnarRepresentative
from repro.representatives.representative import DatabaseRepresentative
from repro.serving.http import HTTPError, Response, ServingApp
from repro.serving.wire import (
    WireFormatError,
    encode_hits,
    query_from_wire,
    representative_to_wire,
)

__all__ = ["EngineApp"]


class EngineApp(ServingApp):
    """Serve one search engine over HTTP.

    Args:
        engine: The engine to expose.  Its ``name`` is the routing key
            brokers register it under.
        registry: Metrics sink (a fresh registry when omitted).
        max_body: Request body cap in bytes.
        default_deadline: Budget applied to requests without an
            ``X-Repro-Deadline`` header.
    """

    role = "engine"

    def __init__(self, engine: SearchEngine, **kwargs):
        self.engine = engine
        self._rep_lock = threading.Lock()
        self._rep_cache: Optional[Tuple[int, DatabaseRepresentative]] = None
        self._npz_cache: Optional[Tuple[int, bytes]] = None
        super().__init__(**kwargs)
        self._m_searches = self.registry.counter("serving.engine.searches")
        self._m_snapshots = self.registry.counter("serving.engine.snapshots")

    def add_routes(self) -> None:
        self.route("POST", "/search", self._route_search)
        self.route("POST", "/max_similarity", self._route_max_similarity)
        self.route("GET", "/representative", self._route_representative)

    def health_info(self) -> dict:
        return {
            "engine": self.engine.name,
            "documents": self.engine.n_documents,
        }

    # -- request parsing -----------------------------------------------------

    def _parse_query(self, payload: dict):
        try:
            return query_from_wire(payload["query"])
        except KeyError:
            raise HTTPError(400, "payload missing required field 'query'") from None
        except WireFormatError as exc:
            raise HTTPError(400, f"bad query: {exc}") from exc

    @staticmethod
    def _parse_threshold(payload: dict) -> float:
        try:
            return float(payload["threshold"])
        except KeyError:
            raise HTTPError(
                400, "payload missing required field 'threshold'"
            ) from None
        except (TypeError, ValueError) as exc:
            raise HTTPError(400, f"bad threshold: {exc}") from exc

    # -- routes --------------------------------------------------------------

    def _route_search(self, params, payload) -> Response:
        query = self._parse_query(payload)
        threshold = self._parse_threshold(payload)
        hits = self.engine.search(query, threshold)
        self._m_searches.inc()
        return Response(
            payload={
                "kind": "hits",
                "engine": self.engine.name,
                "hits": encode_hits(hits),
            }
        )

    def _route_max_similarity(self, params, payload) -> Response:
        query = self._parse_query(payload)
        return Response(
            payload={
                "kind": "max_similarity",
                "engine": self.engine.name,
                "value": float(self.engine.max_similarity(query)),
            }
        )

    def _representative(self) -> Tuple[int, DatabaseRepresentative]:
        """The current representative, rebuilt only when the version moved."""
        version = self.engine.n_documents
        with self._rep_lock:
            if self._rep_cache is None or self._rep_cache[0] != version:
                self._rep_cache = (version, build_representative(self.engine))
                self._m_snapshots.inc()
            return self._rep_cache

    def _npz_snapshot(self) -> Tuple[int, bytes]:
        """The columnar binary form, cached per version like the dict form."""
        version, representative = self._representative()
        with self._rep_lock:
            if self._npz_cache is None or self._npz_cache[0] != version:
                buffer = io.BytesIO()
                ColumnarRepresentative.from_representative(
                    representative
                ).save_npz(buffer)
                self._npz_cache = (version, buffer.getvalue())
            return self._npz_cache

    def _route_representative(self, params, payload) -> Response:
        fmt = params.get("format", "json")
        if fmt not in ("json", "npz"):
            raise HTTPError(
                400, f"unknown representative format {fmt!r} (json or npz)"
            )
        if fmt == "npz":
            if params.get("quantize") is not None:
                raise HTTPError(
                    400, "quantize is not supported with format=npz"
                )
            version, blob = self._npz_snapshot()
            return Response(
                raw=blob,
                content_type="application/octet-stream",
                headers={"X-Repro-Representative-Version": str(version)},
            )
        quantize: Optional[int] = None
        raw = params.get("quantize")
        if raw is not None:
            try:
                quantize = int(raw)
            except ValueError as exc:
                raise HTTPError(400, f"bad quantize parameter: {exc}") from exc
            if quantize < 1:
                raise HTTPError(
                    400, f"quantize must be >= 1, got {quantize}"
                )
        version, representative = self._representative()
        return Response(
            payload={
                "kind": "representative.snapshot",
                "name": self.engine.name,
                "version": version,
                "representative": representative_to_wire(
                    representative, quantize=quantize
                ),
            }
        )
