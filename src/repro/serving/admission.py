"""Bounded admission control for the broker gateway.

The gateway must keep its latency promise under load bursts, so requests
pass through a two-stage admission queue before touching the broker:

* at most ``max_active`` requests execute concurrently;
* at most ``max_queued`` more wait for a slot (bounded by the request's
  remaining deadline, or a configurable cap when the request carries
  none);
* everything beyond that is **shed immediately** — the caller gets a
  503 with ``Retry-After`` instead of an unbounded queue delay.  An
  overloaded gateway that answers "come back later" in microseconds
  beats one that answers correctly after the user gave up.

Draining flips the queue closed: *new* arrivals are refused, while
requests already admitted or queued run to completion — the "finish
in-flight work" half of graceful shutdown.

The queue exports its state to the :class:`~repro.obs.MetricsRegistry`:
``serving.admission.active`` / ``serving.admission.queued`` gauges,
``serving.admission.{admitted,shed,expired,rejected}`` counters, and a
``serving.admission.wait.seconds`` histogram of time spent queued before
admission.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

from repro.obs.registry import LATENCY_BUCKETS, NULL_REGISTRY

__all__ = ["ADMITTED", "CLOSED", "EXPIRED", "SHED", "AdmissionQueue"]

#: Admission outcomes.
ADMITTED = "admitted"  # a slot is held; the caller must release()
SHED = "shed"  # queue full, refused immediately
EXPIRED = "expired"  # queued, but the wait budget ran out first
CLOSED = "closed"  # draining, new work refused


class AdmissionQueue:
    """Counting admission with a bounded wait queue and load shedding.

    Args:
        max_active: Concurrent requests allowed past admission (>= 1).
        max_queued: Requests allowed to wait for a slot (>= 0; 0 sheds
            everything beyond ``max_active`` instantly).
        registry: Metrics sink; the shared no-op registry by default.
    """

    def __init__(self, max_active: int, max_queued: int, registry=None):
        if max_active < 1:
            raise ValueError(f"max_active must be >= 1, got {max_active!r}")
        if max_queued < 0:
            raise ValueError(f"max_queued must be >= 0, got {max_queued!r}")
        self.max_active = max_active
        self.max_queued = max_queued
        registry = registry if registry is not None else NULL_REGISTRY
        self._cond = threading.Condition()
        self._active = 0
        self._queued = 0
        self._closed = False
        self._g_active = registry.gauge("serving.admission.active")
        self._g_queued = registry.gauge("serving.admission.queued")
        self._m_admitted = registry.counter("serving.admission.admitted")
        self._m_shed = registry.counter("serving.admission.shed")
        self._m_expired = registry.counter("serving.admission.expired")
        self._m_rejected = registry.counter("serving.admission.rejected")
        self._m_wait = registry.histogram(
            "serving.admission.wait.seconds", buckets=LATENCY_BUCKETS
        )

    # -- state ---------------------------------------------------------------

    @property
    def active(self) -> int:
        with self._cond:
            return self._active

    @property
    def queued(self) -> int:
        with self._cond:
            return self._queued

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    # -- admission -----------------------------------------------------------

    def acquire(self, timeout: Optional[float] = None) -> str:
        """Try to enter; returns one of the outcome constants.

        Args:
            timeout: Maximum seconds to wait in the queue (typically the
                request's remaining deadline); ``None`` waits until a slot
                frees up.

        Only an :data:`ADMITTED` outcome holds a slot — the caller must
        pair it with :meth:`release`.
        """
        with self._cond:
            if self._closed:
                self._m_rejected.inc()
                return CLOSED
            if self._active < self.max_active and self._queued == 0:
                self._admit_locked()
                return ADMITTED
            if self._queued >= self.max_queued:
                self._m_shed.inc()
                return SHED
            self._queued += 1
            self._g_queued.set(self._queued)
            started = time.monotonic()
            expires = None if timeout is None else started + timeout
            try:
                while True:
                    if self._active < self.max_active:
                        self._admit_locked()
                        self._m_wait.observe(time.monotonic() - started)
                        return ADMITTED
                    remaining = None
                    if expires is not None:
                        remaining = expires - time.monotonic()
                        if remaining <= 0:
                            self._m_expired.inc()
                            return EXPIRED
                    self._cond.wait(remaining)
            finally:
                self._queued -= 1
                self._g_queued.set(self._queued)
                self._cond.notify_all()

    def _admit_locked(self) -> None:
        self._active += 1
        self._g_active.set(self._active)
        self._m_admitted.inc()

    def release(self) -> None:
        """Return an admitted slot and wake one queued waiter."""
        with self._cond:
            if self._active <= 0:
                raise RuntimeError("release() without a matching acquire()")
            self._active -= 1
            self._g_active.set(self._active)
            self._cond.notify_all()

    # -- drain ---------------------------------------------------------------

    def close(self) -> None:
        """Refuse new arrivals; admitted and queued requests still finish."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no request is active or queued; False on timeout."""
        expires = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._active > 0 or self._queued > 0:
                remaining = None
                if expires is not None:
                    remaining = expires - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(remaining)
            return True

    def __repr__(self) -> str:
        with self._cond:
            return (
                f"AdmissionQueue(active={self._active}/{self.max_active}, "
                f"queued={self._queued}/{self.max_queued}, "
                f"closed={self._closed})"
            )
