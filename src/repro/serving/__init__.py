"""Network serving layer: engines and the broker over HTTP.

The paper's architecture is inherently distributed — engines hold the
documents, the broker holds only representatives — and this package puts
that split on the wire with nothing beyond the standard library:

* :mod:`repro.serving.wire` — the JSON schema; round trips are exact.
* :mod:`repro.serving.engine_server` — one engine behind HTTP.
* :mod:`repro.serving.remote_engine` — clients; a :class:`RemoteEngine`
  plugs into the existing brokers unchanged.
* :mod:`repro.serving.gateway` — the broker behind bounded admission
  with load shedding and graceful drain.
* :mod:`repro.serving.coalesce` — continuous micro-batching: concurrent
  ``/estimate`` and ``/search`` requests coalesce into single broker
  batch calls (enable with the gateway's ``coalesce_window`` /
  ``--coalesce-window-ms``).
* :mod:`repro.serving.http` — the shared server substrate (deadlines,
  body limits, metrics, drain).
* :mod:`repro.serving.shard_worker` — one shard of a partitioned fleet:
  batch estimation and targeted dispatch over a columnar slice.
* :mod:`repro.serving.coordinator` — scatter-gather over shard workers
  behind the broker interface; :class:`CoordinatorApp` is the gateway
  served over a :class:`ShardedFleet`.
* :mod:`repro.serving.async_gateway` — an asyncio connection frontend
  (one coroutine per keep-alive connection instead of one thread) for
  any of the apps.

Start servers with ``repro serve engine|gateway|shard|coordinator ...``
or programmatically via :class:`ServingServer` /
:class:`AsyncServingServer`.
"""

from repro.serving.admission import AdmissionQueue
from repro.serving.async_gateway import AsyncServingServer
from repro.serving.coalesce import (
    CoalesceClosed,
    CoalesceExpired,
    CoalescingWindow,
)
from repro.serving.coordinator import CoordinatorApp, ShardedFleet
from repro.serving.deadlines import (
    DEADLINE_HEADER,
    Deadline,
    ambient_deadline,
    deadline_scope,
)
from repro.serving.engine_server import EngineApp, LiveEngineApp
from repro.serving.gateway import GatewayApp
from repro.serving.http import HTTPError, Response, ServingApp, ServingServer
from repro.serving.remote_engine import (
    GatewayClient,
    RemoteEngine,
    RemoteServingError,
    RemoteTimeout,
)
from repro.serving.shard_worker import ShardApp
from repro.serving.wire import (
    WireFormatError,
    decode_hits,
    encode_hits,
    estimate_from_wire,
    estimate_to_wire,
    failure_from_wire,
    failure_to_wire,
    query_from_wire,
    query_to_wire,
    representative_from_wire,
    representative_to_wire,
    response_from_wire,
    response_to_wire,
    usefulness_from_wire,
    usefulness_to_wire,
)

__all__ = [
    "AdmissionQueue",
    "AsyncServingServer",
    "CoalesceClosed",
    "CoalesceExpired",
    "CoalescingWindow",
    "CoordinatorApp",
    "DEADLINE_HEADER",
    "Deadline",
    "EngineApp",
    "GatewayApp",
    "GatewayClient",
    "HTTPError",
    "LiveEngineApp",
    "RemoteEngine",
    "RemoteServingError",
    "RemoteTimeout",
    "Response",
    "ServingApp",
    "ServingServer",
    "ShardApp",
    "ShardedFleet",
    "WireFormatError",
    "ambient_deadline",
    "deadline_scope",
    "decode_hits",
    "encode_hits",
    "estimate_from_wire",
    "estimate_to_wire",
    "failure_from_wire",
    "failure_to_wire",
    "query_from_wire",
    "query_to_wire",
    "representative_from_wire",
    "representative_to_wire",
    "response_from_wire",
    "response_to_wire",
    "usefulness_from_wire",
    "usefulness_to_wire",
]
