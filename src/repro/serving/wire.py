"""JSON wire schema for the serving layer.

Everything that crosses the network — queries, hit lists, usefulness
estimates, failure records, whole broker responses, and database
representatives — has an explicit serializer/deserializer pair here.
The encoding rules are chosen so a round trip is *exact*:

* Floats travel as JSON numbers.  ``json.dumps`` renders a double via
  ``repr`` (the shortest string that parses back to the same double) and
  ``json.loads`` parses to the nearest double, so every finite float
  survives serialize → deserialize bit-for-bit.  Estimates computed from
  a decoded representative are therefore byte-identical to estimates
  computed from the original — the property suite asserts exactly this.
* A representative additionally supports the paper's Section 3.2 wire
  sizing: :func:`representative_to_wire` with ``quantize=levels`` ships
  per-term *one-byte codes* (base64-packed, so four fields cost ~4
  bytes/term before framing) plus one small decode grid per field per
  database.  Decoding reproduces :func:`~repro.representatives.quantized.
  quantize_representative` exactly — the same fitted grids, the same
  codes, the same clamps — so a broker holding a wire-quantized
  representative estimates identically to one that quantized locally.

Every payload carries a ``kind`` tag; decoders validate it so a payload
routed to the wrong decoder fails loudly instead of half-parsing.
"""

from __future__ import annotations

import base64
from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.core.types import Usefulness
from repro.corpus.query import Query
from repro.engine.results import SearchHit
from repro.metasearch.broker import MetasearchResponse
from repro.metasearch.dispatch import EngineFailure
from repro.metasearch.selection import EstimatedUsefulness
from repro.representatives.representative import DatabaseRepresentative
from repro.representatives.term_stats import TermStats
from repro.stats.quantization import OneByteQuantizer

__all__ = [
    "WireFormatError",
    "decode_hits",
    "encode_hits",
    "estimate_from_wire",
    "estimate_to_wire",
    "failure_from_wire",
    "failure_to_wire",
    "query_from_wire",
    "query_to_wire",
    "representative_from_wire",
    "representative_to_wire",
    "response_from_wire",
    "response_to_wire",
    "usefulness_from_wire",
    "usefulness_to_wire",
]


class WireFormatError(ValueError):
    """A payload does not conform to the wire schema."""


def _expect_kind(payload: dict, kind: str) -> dict:
    if not isinstance(payload, dict):
        raise WireFormatError(f"expected a JSON object, got {type(payload).__name__}")
    got = payload.get("kind")
    if got != kind:
        raise WireFormatError(f"expected kind {kind!r}, got {got!r}")
    return payload


def _field(payload: dict, name: str):
    try:
        return payload[name]
    except KeyError:
        raise WireFormatError(f"payload missing required field {name!r}") from None


# -- queries -------------------------------------------------------------------


def query_to_wire(query: Query) -> dict:
    return {
        "kind": "query",
        "terms": list(query.terms),
        "weights": [float(w) for w in query.weights],
    }


def query_from_wire(payload: dict) -> Query:
    _expect_kind(payload, "query")
    terms = _field(payload, "terms")
    weights = _field(payload, "weights")
    try:
        return Query(
            terms=tuple(str(t) for t in terms),
            weights=tuple(float(w) for w in weights),
        )
    except (TypeError, ValueError) as exc:
        raise WireFormatError(f"invalid query payload: {exc}") from exc


# -- hits ----------------------------------------------------------------------
#
# Hit lists are hot (every search response carries one), so they encode as
# compact triples rather than keyed objects.  The decoder is a *generator*:
# remote result lists flow straight into ``merge_hits`` without an
# intermediate materialization.


def encode_hits(hits: Iterable[SearchHit]) -> List[list]:
    return [[float(h.similarity), h.doc_id, h.engine] for h in hits]


def decode_hits(rows: Iterable[list]) -> Iterator[SearchHit]:
    for row in rows:
        try:
            similarity, doc_id, engine = row
        except (TypeError, ValueError) as exc:
            raise WireFormatError(f"invalid hit triple: {row!r}") from exc
        yield SearchHit(
            similarity=float(similarity),
            doc_id=str(doc_id),
            engine=None if engine is None else str(engine),
        )


# -- usefulness / estimates / failures ----------------------------------------


def usefulness_to_wire(usefulness: Usefulness) -> dict:
    return {
        "kind": "usefulness",
        "nodoc": float(usefulness.nodoc),
        "avgsim": float(usefulness.avgsim),
    }


def usefulness_from_wire(payload: dict) -> Usefulness:
    _expect_kind(payload, "usefulness")
    return Usefulness(
        nodoc=float(_field(payload, "nodoc")),
        avgsim=float(_field(payload, "avgsim")),
    )


def estimate_to_wire(estimate: EstimatedUsefulness) -> dict:
    return {
        "kind": "estimate",
        "engine": estimate.engine,
        "nodoc": float(estimate.usefulness.nodoc),
        "avgsim": float(estimate.usefulness.avgsim),
    }


def estimate_from_wire(payload: dict) -> EstimatedUsefulness:
    _expect_kind(payload, "estimate")
    return EstimatedUsefulness(
        engine=str(_field(payload, "engine")),
        usefulness=Usefulness(
            nodoc=float(_field(payload, "nodoc")),
            avgsim=float(_field(payload, "avgsim")),
        ),
    )


def failure_to_wire(failure: EngineFailure) -> dict:
    return {
        "kind": "failure",
        "engine": failure.engine,
        "failure_kind": failure.kind,
        "attempts": failure.attempts,
        "elapsed": float(failure.elapsed),
        "message": failure.message,
    }


def failure_from_wire(payload: dict) -> EngineFailure:
    _expect_kind(payload, "failure")
    return EngineFailure(
        engine=str(_field(payload, "engine")),
        kind=str(_field(payload, "failure_kind")),
        attempts=int(_field(payload, "attempts")),
        elapsed=float(_field(payload, "elapsed")),
        message=str(_field(payload, "message")),
    )


# -- broker responses ----------------------------------------------------------


def response_to_wire(response: MetasearchResponse) -> dict:
    """Encode a broker response.  The trace is timing-only diagnostics and
    excluded from response equality, so it does not cross the wire."""
    return {
        "kind": "response",
        "hits": encode_hits(response.hits),
        "invoked": list(response.invoked),
        "estimates": [estimate_to_wire(e) for e in response.estimates],
        "failures": [failure_to_wire(f) for f in response.failures],
        "latencies": {name: float(v) for name, v in response.latencies.items()},
    }


def response_from_wire(payload: dict) -> MetasearchResponse:
    _expect_kind(payload, "response")
    return MetasearchResponse(
        hits=list(decode_hits(_field(payload, "hits"))),
        invoked=[str(name) for name in _field(payload, "invoked")],
        estimates=[estimate_from_wire(e) for e in _field(payload, "estimates")],
        failures=[failure_from_wire(f) for f in payload.get("failures", [])],
        latencies={
            str(name): float(v)
            for name, v in payload.get("latencies", {}).items()
        },
    )


# -- representatives -----------------------------------------------------------

_QUANT_FIELDS = ("probability", "mean", "std", "max_weight")


def _pack_codes(codes: np.ndarray, levels: int):
    """Codes as base64 bytes when they fit one byte each, plain ints otherwise."""
    if levels <= 256:
        return base64.b64encode(codes.astype(np.uint8).tobytes()).decode("ascii")
    return [int(c) for c in codes]


def _unpack_codes(packed, n_terms: int) -> np.ndarray:
    if isinstance(packed, str):
        raw = np.frombuffer(base64.b64decode(packed), dtype=np.uint8)
        codes = raw.astype(np.int64)
    else:
        codes = np.asarray([int(c) for c in packed], dtype=np.int64)
    if codes.size != n_terms:
        raise WireFormatError(
            f"expected {n_terms} codes, got {codes.size}"
        )
    return codes


def representative_to_wire(
    representative: DatabaseRepresentative, quantize: Optional[int] = None
) -> dict:
    """Encode a representative, exactly (default) or one-byte quantized.

    Args:
        representative: The representative to ship.
        quantize: When given, the number of quantization levels (256 is the
            paper's one-byte scheme).  Each numeric field is fitted with the
            same :class:`~repro.stats.quantization.OneByteQuantizer` the
            in-process :func:`~repro.representatives.quantized.
            quantize_representative` uses, and the wire carries one code per
            term per field plus the per-field decode grids — ~4 bytes/term,
            the Section 3.2 sizing.
    """
    if quantize is None:
        return representative.to_json_dict()
    if quantize < 1:
        raise ValueError(f"quantize levels must be >= 1, got {quantize!r}")
    terms = [term for term, __ in representative.items()]
    stats = [representative.get(term) for term in terms]
    has_max = bool(terms) and all(s.max_weight is not None for s in stats)
    fields: Dict[str, dict] = {}
    if terms:
        columns = {
            "probability": np.array([s.probability for s in stats]),
            "mean": np.array([s.mean for s in stats]),
            "std": np.array([s.std for s in stats]),
        }
        if has_max:
            columns["max_weight"] = np.array([s.max_weight for s in stats])
        for name, values in columns.items():
            bounds = {"low": 0.0, "high": 1.0} if name == "probability" else {}
            grid = OneByteQuantizer(levels=quantize, **bounds).fit(values)
            fields[name] = {
                "low": float(grid.low),
                "high": float(grid.high),
                "decode": [float(v) for v in grid.decode_values],
                "codes": _pack_codes(grid.encode(values), quantize),
            }
    return {
        "kind": "representative.quantized",
        "name": representative.name,
        "n_documents": representative.n_documents,
        "levels": int(quantize),
        "terms": terms,
        "fields": fields,
    }


def _decode_quantized(payload: dict) -> DatabaseRepresentative:
    terms = [str(t) for t in _field(payload, "terms")]
    fields = _field(payload, "fields")
    if not terms:
        return DatabaseRepresentative(
            name=str(_field(payload, "name")),
            n_documents=int(_field(payload, "n_documents")),
            term_stats={},
        )
    columns: Dict[str, np.ndarray] = {}
    for name, spec in fields.items():
        if name not in _QUANT_FIELDS:
            raise WireFormatError(f"unknown quantized field {name!r}")
        decode_values = np.asarray(
            [float(v) for v in _field(spec, "decode")], dtype=float
        )
        codes = _unpack_codes(_field(spec, "codes"), len(terms))
        if codes.size and (codes.min() < 0 or codes.max() >= decode_values.size):
            raise WireFormatError("quantization code out of grid range")
        columns[name] = decode_values[codes]
    for required in ("probability", "mean", "std"):
        if required not in columns:
            raise WireFormatError(f"quantized payload missing field {required!r}")
    has_max = "max_weight" in columns
    # The clamps mirror quantize_representative(): decoding a wire-shipped
    # representative must equal quantizing the original locally.
    term_stats = {}
    for i, term in enumerate(terms):
        term_stats[term] = TermStats(
            probability=float(np.clip(columns["probability"][i], 0.0, 1.0)),
            mean=float(max(columns["mean"][i], 0.0)),
            std=float(max(columns["std"][i], 0.0)),
            max_weight=(
                float(max(columns["max_weight"][i], 0.0)) if has_max else None
            ),
        )
    return DatabaseRepresentative(
        name=str(_field(payload, "name")),
        n_documents=int(_field(payload, "n_documents")),
        term_stats=term_stats,
    )


def representative_from_wire(payload: dict) -> DatabaseRepresentative:
    """Decode either representative wire form into a plain representative."""
    if not isinstance(payload, dict):
        raise WireFormatError(
            f"expected a JSON object, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    if kind == "representative":
        try:
            return DatabaseRepresentative.from_json_dict(payload)
        except (KeyError, TypeError, ValueError) as exc:
            raise WireFormatError(f"invalid representative payload: {exc}") from exc
    if kind == "representative.quantized":
        return _decode_quantized(payload)
    raise WireFormatError(f"unknown representative kind {kind!r}")
