"""HTTP clients for the serving layer.

:class:`RemoteEngine` is the adapter that makes a network engine look
like a local one: it implements the same calls
:class:`~repro.metasearch.broker.MetasearchBroker` (``name``, ``search``,
``max_similarity``) and :class:`~repro.metasearch.protocol.SubscribingBroker`
(``version``, ``snapshot_representative``) consume, so the entire broker
stack — selection, concurrent dispatch, retries, degradation, merging —
runs unchanged over remote engines.  Failure mapping falls out of that:
a transport or server error raises :class:`RemoteServingError`
(a ``ConnectionError``), which the dispatcher retries and finally records
as an :class:`~repro.metasearch.dispatch.EngineFailure` of kind
``"error"``; a socket timeout or an already-exhausted deadline raises
:class:`RemoteTimeout` (non-retryable, kind ``"timeout"``); a hung server
trips the dispatcher's own deadline and becomes kind ``"timeout"``.
Remote engines degrade exactly like slow or broken local ones.

Deadline handling: every request's budget is the tightest of the
client's configured ``timeout`` and the ambient
:func:`~repro.serving.deadlines.ambient_deadline` (set by the gateway
around request handling).  The remaining budget travels downstream in
``X-Repro-Deadline`` and doubles as the socket timeout, so a request
admitted with 80 ms left can neither wait 10 s on a socket nor ask the
engine for more time than its caller has.

Connections are pooled per ``(pid, thread)`` (``http.client`` connections
are not thread-safe; the broker's dispatcher calls from many threads) and
reused across requests via HTTP/1.1 keep-alive, with one transparent
retry when a pooled connection turns out to have been closed by the
server.  The pid half of the key makes the pool fork-safe: a process that
``fork()``\\ s after making requests (shard workers, multiprocessing load
generators) inherits the parent's pooled sockets, and writing on one of
those would interleave two processes' requests on a single connection —
so a pooled entry whose pid no longer matches is closed and redialed.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import threading
from typing import List, Optional, Sequence, Union
from urllib.parse import urlsplit

from repro.corpus.query import Query
from repro.engine.results import SearchHit
from repro.fleet.delta import DELTA_KIND, RepresentativeDelta
from repro.metasearch.broker import MetasearchResponse
from repro.metasearch.protocol import RepresentativeSnapshot
from repro.metasearch.selection import EstimatedUsefulness
from repro.serving.deadlines import DEADLINE_HEADER, ambient_deadline
from repro.serving.wire import (
    WireFormatError,
    decode_hits,
    estimate_from_wire,
    query_to_wire,
    representative_from_wire,
    response_from_wire,
)

__all__ = [
    "GatewayClient",
    "RemoteEngine",
    "RemoteServingError",
    "RemoteTimeout",
]


class RemoteServingError(ConnectionError):
    """A remote call failed (transport error or non-2xx response).

    Subclasses ``ConnectionError`` so the broker's dispatcher treats it
    like any other engine fault: retry per policy, then degrade.
    """

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status


class RemoteTimeout(RemoteServingError):
    """A remote call ran out of time — socket timeout, or the ambient
    deadline was already spent before the request could even be sent.

    The class attributes are the dispatcher's duck-typed failure
    contract: ``retryable = False`` stops
    :class:`~repro.metasearch.dispatch.ConcurrentDispatcher` from
    re-issuing a request whose budget is gone (the fail-fast half of the
    ``X-Repro-Deadline: 0`` bug — previously the clamped-to-zero budget
    raised a generic retryable error, so the dispatcher would burn the
    caller's non-existent remaining time on retries), and
    ``failure_kind = "timeout"`` records the degradation as a timeout
    rather than a generic error.
    """

    retryable = False
    failure_kind = "timeout"


class _HTTPJsonClient:
    """Thread-pooled JSON-over-HTTP with deadline propagation."""

    def __init__(self, base_url: str, timeout: Optional[float] = 10.0):
        split = urlsplit(base_url)
        if split.scheme != "http" or not split.hostname:
            raise ValueError(
                f"base_url must be http://host:port, got {base_url!r}"
            )
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout!r}")
        self.base_url = base_url.rstrip("/")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout
        self._local = threading.local()

    # -- connection pool -----------------------------------------------------

    def _connection(self, budget: Optional[float]) -> http.client.HTTPConnection:
        # Fork safety: thread-local state survives fork() into the child's
        # surviving thread, so the pooled connection's socket would be
        # shared with the parent process.  Detect the pid change and
        # redial instead of writing on the inherited socket (close() only
        # drops this process's descriptor; the parent's copy is unharmed).
        if getattr(self._local, "pid", None) != os.getpid():
            stale = getattr(self._local, "conn", None)
            if stale is not None:
                try:
                    stale.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass
            self._local.conn = None
            self._local.pid = os.getpid()
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=budget
            )
            self._local.conn = conn
        else:
            conn.timeout = budget
            if conn.sock is not None:
                conn.sock.settimeout(budget)
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    def close(self) -> None:
        """Close this thread's pooled connection (others expire with their
        threads; connections are daemonic resources, not leaks)."""
        self._drop_connection()

    # -- request execution ---------------------------------------------------

    def _budget(self) -> Optional[float]:
        """Tightest of the configured timeout and the ambient deadline.

        A budget that has clamped to zero fails fast with a
        non-retryable :class:`RemoteTimeout` — sending the request anyway
        would propagate ``X-Repro-Deadline: 0`` and make the downstream
        engine do work it can never return in time.
        """
        budget = self.timeout
        ambient = ambient_deadline()
        if ambient is not None:
            remaining = ambient.remaining()
            budget = remaining if budget is None else min(budget, remaining)
        if budget is not None and budget <= 0:
            raise RemoteTimeout(
                f"deadline exhausted before calling {self.base_url}"
            )
        return budget

    def request(self, method: str, path: str, payload: Optional[dict] = None):
        """One JSON round trip; returns the decoded response body."""
        raw, response = self._roundtrip(method, path, payload)
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RemoteServingError(
                f"{self.base_url}{path} returned invalid JSON: {exc}"
            ) from exc

    def request_raw(self, method: str, path: str):
        """One round trip for a binary body; returns ``(bytes, headers)``."""
        raw, response = self._roundtrip(method, path, None)
        return raw, dict(response.getheaders())

    def _roundtrip(self, method: str, path: str, payload: Optional[dict]):
        budget = self._budget()
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if budget is not None:
            headers[DEADLINE_HEADER] = repr(budget)
        # One transparent retry: a pooled keep-alive connection may have
        # been closed server-side since its last use.
        for attempt in (0, 1):
            conn = self._connection(budget)
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                self._drop_connection()
                if isinstance(exc, socket.timeout):
                    raise RemoteTimeout(
                        f"timed out calling {self.base_url}{path}"
                    ) from exc
                if attempt == 1:
                    raise RemoteServingError(
                        f"cannot reach {self.base_url}{path}: {exc}"
                    ) from exc
        if response.getheader("Connection", "").lower() == "close":
            self._drop_connection()
        if not 200 <= response.status < 300:
            message = f"HTTP {response.status}"
            try:
                detail = json.loads(raw.decode("utf-8")).get("error")
            except (AttributeError, ValueError, UnicodeDecodeError):
                detail = None
            if detail:
                message = f"{message}: {detail}"
            raise RemoteServingError(
                f"{self.base_url}{path} answered {message}",
                status=response.status,
            )
        return raw, response


class RemoteEngine:
    """A search engine reached over HTTP, usable wherever a local one is.

    Args:
        base_url: The engine server's root URL (``http://host:port``).
        timeout: Per-request budget in seconds; tightened further by any
            ambient deadline.  ``None`` relies on deadlines alone.
        name: The engine's name if already known; fetched from
            ``/healthz`` on first use otherwise.
    """

    def __init__(
        self,
        base_url: str,
        timeout: Optional[float] = 10.0,
        name: Optional[str] = None,
    ):
        self._client = _HTTPJsonClient(base_url, timeout=timeout)
        self._name = name

    @property
    def base_url(self) -> str:
        return self._client.base_url

    @property
    def name(self) -> str:
        if self._name is None:
            info = self._client.request("GET", "/healthz")
            engine = info.get("engine")
            if not engine:
                raise RemoteServingError(
                    f"{self.base_url} does not identify an engine "
                    f"(role={info.get('role')!r})"
                )
            self._name = str(engine)
        return self._name

    @property
    def version(self) -> int:
        """The engine's live document count (one ``/healthz`` round trip)."""
        info = self._client.request("GET", "/healthz")
        return int(info.get("documents", 0))

    n_documents = version

    # -- the engine protocol -------------------------------------------------

    def search(self, query: Query, threshold: float) -> List[SearchHit]:
        payload = self._client.request(
            "POST",
            "/search",
            {"query": query_to_wire(query), "threshold": float(threshold)},
        )
        try:
            return list(decode_hits(payload["hits"]))
        except (KeyError, WireFormatError) as exc:
            raise RemoteServingError(
                f"{self.base_url} returned a malformed hit list: {exc}"
            ) from exc

    def max_similarity(self, query: Query) -> float:
        payload = self._client.request(
            "POST", "/max_similarity", {"query": query_to_wire(query)}
        )
        try:
            return float(payload["value"])
        except (KeyError, TypeError, ValueError) as exc:
            raise RemoteServingError(
                f"{self.base_url} returned a malformed max_similarity: {exc}"
            ) from exc

    def snapshot_representative(
        self, quantize: Optional[int] = None, columnar: bool = False
    ) -> RepresentativeSnapshot:
        """Fetch the engine's versioned representative.

        Args:
            quantize: Ship the one-byte quantized wire form with this many
                levels (~4 bytes/term) instead of the exact floats.
            columnar: Ship the columnar ``.npz`` binary form instead of
                JSON — no float text round-trip, decoded straight into a
                :class:`~repro.representatives.columnar.ColumnarRepresentative`
                (duck-compatible with the dict representative and directly
                registrable with a columnar broker).  Exclusive with
                ``quantize``.
        """
        if columnar:
            if quantize is not None:
                raise ValueError("quantize is not supported with columnar")
            return self._snapshot_columnar()
        path = "/representative"
        if quantize is not None:
            path = f"{path}?quantize={int(quantize)}"
        payload = self._client.request("GET", path)
        try:
            return RepresentativeSnapshot(
                name=str(payload["name"]),
                version=int(payload["version"]),
                representative=representative_from_wire(
                    payload["representative"]
                ),
            )
        except (KeyError, TypeError, ValueError, WireFormatError) as exc:
            raise RemoteServingError(
                f"{self.base_url} returned a malformed representative: {exc}"
            ) from exc

    def sync_representative(
        self, since: Optional[int] = None
    ) -> Union[RepresentativeDelta, RepresentativeSnapshot]:
        """Fetch the cheapest representation of "everything after ``since``".

        Asks the live engine's ``/representative/delta`` endpoint and
        returns whatever it answers: a
        :class:`~repro.fleet.delta.RepresentativeDelta` covering
        ``since → now``, or a full :class:`RepresentativeSnapshot` when
        ``since`` is ``None``, has been compacted out of the server's
        replay log, or the server is a plain (non-live) engine server —
        the caller discriminates with ``isinstance``.  This is the remote
        half of :meth:`~repro.metasearch.broker.MetasearchBroker.
        sync_representative`.
        """
        path = "/representative/delta"
        if since is not None:
            path = f"{path}?since={int(since)}"
        try:
            payload = self._client.request("GET", path)
        except RemoteServingError as exc:
            if exc.status == 404:
                # A plain EngineApp without the live protocol: fall back
                # to the full snapshot it does serve.
                return self.snapshot_representative()
            raise
        kind = payload.get("kind") if isinstance(payload, dict) else None
        try:
            if kind == DELTA_KIND:
                return RepresentativeDelta.from_json_dict(payload)
            if kind == "representative.snapshot":
                return RepresentativeSnapshot(
                    name=str(payload["name"]),
                    version=int(payload["version"]),
                    representative=representative_from_wire(
                        payload["representative"]
                    ),
                )
        except (KeyError, TypeError, ValueError, WireFormatError) as exc:
            raise RemoteServingError(
                f"{self.base_url} returned a malformed sync payload: {exc}"
            ) from exc
        raise RemoteServingError(
            f"{self.base_url}{path} answered unknown kind {kind!r}"
        )

    def _snapshot_columnar(self) -> RepresentativeSnapshot:
        import io

        from repro.representatives.columnar import ColumnarRepresentative

        raw, headers = self._client.request_raw(
            "GET", "/representative?format=npz"
        )
        version_header = next(
            (
                value
                for key, value in headers.items()
                if key.lower() == "x-repro-representative-version"
            ),
            None,
        )
        try:
            representative = ColumnarRepresentative.load_npz(io.BytesIO(raw))
            version = int(version_header)
        except (KeyError, TypeError, ValueError, OSError) as exc:
            raise RemoteServingError(
                f"{self.base_url} returned a malformed columnar "
                f"representative: {exc}"
            ) from exc
        return RepresentativeSnapshot(
            name=representative.name,
            version=version,
            representative=representative,
        )

    def close(self) -> None:
        self._client.close()

    def __repr__(self) -> str:
        name = self._name or "?"
        return f"RemoteEngine({name!r} @ {self.base_url})"


class GatewayClient:
    """Client for the broker gateway's estimate/search/batch endpoints.

    Decodes wire payloads back into the broker's own result types, so a
    remote answer compares ``==`` against an in-process
    :class:`~repro.metasearch.broker.MetasearchResponse`.
    """

    def __init__(self, base_url: str, timeout: Optional[float] = 30.0):
        self._client = _HTTPJsonClient(base_url, timeout=timeout)

    @property
    def base_url(self) -> str:
        return self._client.base_url

    def estimate(
        self, query: Query, threshold: float
    ) -> List[EstimatedUsefulness]:
        payload = self._client.request(
            "POST",
            "/estimate",
            {"query": query_to_wire(query), "threshold": float(threshold)},
        )
        try:
            return [estimate_from_wire(e) for e in payload["estimates"]]
        except (KeyError, WireFormatError) as exc:
            raise RemoteServingError(
                f"{self.base_url} returned malformed estimates: {exc}"
            ) from exc

    def search(
        self, query: Query, threshold: float, limit: Optional[int] = None
    ) -> MetasearchResponse:
        body = {"query": query_to_wire(query), "threshold": float(threshold)}
        if limit is not None:
            body["limit"] = int(limit)
        payload = self._client.request("POST", "/search", body)
        try:
            return response_from_wire(payload)
        except WireFormatError as exc:
            raise RemoteServingError(
                f"{self.base_url} returned a malformed response: {exc}"
            ) from exc

    def search_batch(
        self,
        queries: Sequence[Query],
        thresholds: Union[float, Sequence[float]],
        limit: Optional[int] = None,
    ) -> List[MetasearchResponse]:
        if isinstance(thresholds, (int, float)):
            wire_thresholds: Union[float, List[float]] = float(thresholds)
        else:
            wire_thresholds = [float(t) for t in thresholds]
        body = {
            "queries": [query_to_wire(q) for q in queries],
            "thresholds": wire_thresholds,
        }
        if limit is not None:
            body["limit"] = int(limit)
        payload = self._client.request("POST", "/batch", body)
        try:
            return [response_from_wire(r) for r in payload["responses"]]
        except (KeyError, WireFormatError) as exc:
            raise RemoteServingError(
                f"{self.base_url} returned malformed batch responses: {exc}"
            ) from exc

    def healthz(self) -> dict:
        return self._client.request("GET", "/healthz")

    def metrics_text(self) -> str:
        # /metrics is Prometheus text, not JSON — fetch raw.
        import urllib.request

        with urllib.request.urlopen(
            f"{self.base_url}/metrics", timeout=self._client.timeout
        ) as response:
            return response.read().decode("utf-8")

    def close(self) -> None:
        self._client.close()

    def __repr__(self) -> str:
        return f"GatewayClient({self.base_url})"
