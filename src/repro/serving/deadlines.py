"""Per-request deadline propagation.

A request entering the serving layer carries a *remaining budget*: the
number of seconds the caller is still willing to wait.  The budget crosses
process boundaries in the ``X-Repro-Deadline`` header (a float of seconds,
not a wall-clock timestamp — clocks on two machines need not agree, but a
duration survives the hop losing only the network transit time), and
crosses *call* boundaries inside a process through an ambient thread-local
scope: the gateway opens a :func:`deadline_scope` around request handling,
and every :class:`~repro.serving.remote_engine.RemoteEngine` call issued
underneath reads :func:`ambient_deadline` and forwards the *remaining*
budget downstream.  Enforcement is cooperative and server-side as well:
each server rejects work whose budget is already exhausted (504) rather
than burning cycles on an answer nobody is waiting for.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Optional

__all__ = [
    "DEADLINE_HEADER",
    "Deadline",
    "ambient_deadline",
    "deadline_scope",
    "detached_deadline_scope",
]

#: Header carrying the remaining request budget in seconds.
DEADLINE_HEADER = "X-Repro-Deadline"


class Deadline:
    """A monotonic-clock deadline, created from a remaining budget."""

    __slots__ = ("expires_at",)

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ValueError(f"deadline budget must be >= 0, got {seconds!r}")
        self.expires_at = time.monotonic() + seconds

    def remaining(self) -> float:
        """Seconds of budget left (0.0 once expired, never negative)."""
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    @classmethod
    def parse_header(cls, value: str) -> "Deadline":
        """Parse an ``X-Repro-Deadline`` header value.

        Raises :class:`ValueError` for non-numeric or negative budgets —
        servers map that to a 400.
        """
        seconds = float(value)
        if seconds != seconds or seconds == float("inf"):
            raise ValueError(f"deadline must be finite, got {value!r}")
        return cls(seconds)

    def header_value(self) -> str:
        """The remaining budget rendered for the wire."""
        return repr(self.remaining())

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining():.3f}s)"


_ambient = threading.local()


def ambient_deadline() -> Optional[Deadline]:
    """The tightest deadline of the enclosing scopes, or None."""
    stack = getattr(_ambient, "stack", None)
    if not stack:
        return None
    return min(stack, key=lambda d: d.expires_at)


@contextmanager
def deadline_scope(deadline: Optional[Deadline]):
    """Make ``deadline`` ambient for the current thread.

    ``None`` is a no-op scope so callers need not branch.  Scopes nest;
    the effective ambient deadline is always the tightest one, so an
    inner scope can only shorten the budget, never extend it.
    """
    if deadline is None:
        yield None
        return
    stack = getattr(_ambient, "stack", None)
    if stack is None:
        stack = _ambient.stack = []
    stack.append(deadline)
    try:
        yield deadline
    finally:
        stack.pop()


@contextmanager
def detached_deadline_scope(deadline: Optional[Deadline]):
    """Replace the ambient scope stack for the duration of the block.

    Nested :func:`deadline_scope`\\ s can only *tighten* the budget, which
    is exactly wrong for a thread executing a coalesced batch on behalf
    of several requests: the leader's own request deadline must not cap
    its batchmates.  This scope detaches from the caller's stack entirely
    and makes ``deadline`` (typically the batch's loosest member
    deadline) the sole ambient deadline — or clears ambience when
    ``deadline`` is ``None``.  The caller's stack is restored on exit.
    """
    saved = getattr(_ambient, "stack", None)
    _ambient.stack = [] if deadline is None else [deadline]
    try:
        yield deadline
    finally:
        _ambient.stack = saved if saved is not None else []
