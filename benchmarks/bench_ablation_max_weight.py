"""Ablation — the max-weight subrange on/off, everything else fixed.

Isolates the paper's key design element: the singleton subrange holding the
maximum normalized weight with probability 1/n.  Runs the same 4-equal
scheme with and without it, plus the triplet (estimated-max) middle ground.
"""

from repro.core import SubrangeEstimator
from repro.evaluation import MethodSpec, run_usefulness_experiment
from repro.representatives import SubrangeScheme

from _bench_utils import THRESHOLDS, emit

DB = "D1"
SAMPLE = 1200


def test_ablation_max_weight(benchmark, databases, query_log):
    engine, rep = databases[DB]
    queries = query_log[:SAMPLE]
    methods = [
        MethodSpec(
            "with-max",
            SubrangeEstimator(scheme=SubrangeScheme.equal(4, include_max=True)),
            rep,
            label="4 equal + stored max",
        ),
        MethodSpec(
            "without-max",
            SubrangeEstimator(scheme=SubrangeScheme.equal(4, include_max=False)),
            rep,
            label="4 equal, no max subrange",
        ),
        MethodSpec(
            "estimated-max",
            SubrangeEstimator(
                scheme=SubrangeScheme.equal(4, include_max=True),
                use_stored_max=False,
            ),
            rep.as_triplets(),
            label="4 equal + estimated max",
        ),
    ]
    result = benchmark.pedantic(
        run_usefulness_experiment,
        args=(engine, queries, methods, THRESHOLDS),
        rounds=1,
        iterations=1,
    )
    lines = [
        "",
        f"=== ablation: max-weight subrange on {DB} "
        f"({len(queries)} queries) ===",
    ]
    summaries = {}
    for spec in methods:
        rows = result.metrics[spec.key]
        summary = (
            sum(r.match for r in rows),
            sum(r.mismatch for r in rows),
            sum(r.d_avgsim for r in rows),
        )
        summaries[spec.key] = summary
        lines.append(f"{spec.label:>28}  match {summary[0]:>5}  "
                     f"mismatch {summary[1]:>4}  sum d-S {summary[2]:.3f}")
    emit("ablation_max_weight", "\n".join(lines))

    # Stored max gives at least as many matches as no max at the high
    # thresholds, where the top of the weight distribution decides.
    high = slice(3, None)  # T >= 0.4
    with_max = sum(
        r.match for r in result.metrics["with-max"][high]
    )
    without = sum(
        r.match for r in result.metrics["without-max"][high]
    )
    assert with_max >= without
