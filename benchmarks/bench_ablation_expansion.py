"""Ablation — expansion controls: exponent rounding decimals and the
probability prune floor.  These trade expansion size (and therefore speed)
against estimation accuracy; the bench shows the accuracy cost is nil for
sane settings while the expansion shrinks.
"""

import numpy as np

from repro.core import SubrangeEstimator

from _bench_utils import THRESHOLDS, emit

DB = "D2"
SAMPLE = 300


def test_ablation_expansion_controls(benchmark, databases, query_log):
    __, rep = databases[DB]
    queries = [q for q in query_log[:SAMPLE * 3] if q.n_terms >= 3][:SAMPLE]
    reference = SubrangeEstimator(decimals=10)
    cheap = SubrangeEstimator(decimals=4, prune_floor=1e-9)

    def estimate_cheap():
        for query in queries[:40]:
            cheap.estimate_many(query, rep, THRESHOLDS)

    benchmark(estimate_cheap)

    # Drift is evaluated at thresholds placed mid-cell on the coarse
    # exponent grid (decimals=4 -> multiples of 1e-4, midpoints at +5e-5).
    # A threshold sitting exactly ON a grid point (like 0.1) is ambiguous
    # by construction: rounding legitimately moves boundary exponents from
    # "just above" to "equal", flipping their mass across the strict
    # inequality — that is a property of the threshold, not an error.
    # Rounding also accumulates across the <= 6 per-term multiplies, so
    # probability mass within ~6 * 5e-5 of a threshold can flip either way;
    # the assertions below bound the resulting NoDoc drift accordingly.
    midcell_thresholds = [t + 5e-5 for t in THRESHOLDS]
    ref_sizes = []
    cheap_sizes = []
    nodoc_drift = []
    pruned = []
    for query in queries:
        g_ref = reference.expand(query, rep)
        g_cheap = cheap.expand(query, rep)
        ref_sizes.append(g_ref.n_terms)
        cheap_sizes.append(g_cheap.n_terms)
        pruned.append(g_cheap.pruned_mass)
        for threshold in midcell_thresholds:
            nodoc_drift.append(
                abs(
                    g_ref.est_nodoc(threshold, rep.n_documents)
                    - g_cheap.est_nodoc(threshold, rep.n_documents)
                )
            )
    emit(
        "ablation_expansion",
        "\n".join(
            [
                "",
                f"=== ablation: expansion controls on {DB} "
                f"({len(queries)} multi-term queries) ===",
                f"mean expansion terms: reference {np.mean(ref_sizes):.0f}  "
                f"vs decimals=4+prune {np.mean(cheap_sizes):.0f}",
                f"NoDoc drift across thresholds: mean "
                f"{np.mean(nodoc_drift):.4f}  max {max(nodoc_drift):.4f}  "
                f"(n = {rep.n_documents})",
                f"max pruned probability mass: {max(pruned):.2e}",
            ]
        ),
    )

    # Coarser controls shrink the expansion ...
    assert np.mean(cheap_sizes) <= np.mean(ref_sizes)
    # ... while NoDoc estimates stay put for the vast majority of cases
    # (individual queries with probability mass piled right at a threshold
    # can flip that mass, bounded by a few percent of the database) ...
    assert float(np.percentile(nodoc_drift, 99)) < 1.0
    assert np.mean(nodoc_drift) < 0.1
    assert max(nodoc_drift) < 0.05 * rep.n_documents
    # ... and pruned mass stays accounted for and tiny.
    assert max(pruned) < 1e-6
