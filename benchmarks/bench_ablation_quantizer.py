"""Ablation — quantization levels: how few bits does the representative
really need?  Sweeps 4, 16, 64, 256 levels (2-8 bits per number) on D1 and
reports how the subrange method's accuracy degrades.
"""

from repro.core import SubrangeEstimator
from repro.evaluation import MethodSpec, run_usefulness_experiment
from repro.representatives import quantize_representative

from _bench_utils import THRESHOLDS, emit

DB = "D1"
SAMPLE = 1200
LEVELS = (4, 16, 64, 256)


def test_ablation_quantizer_levels(benchmark, databases, query_log):
    engine, rep = databases[DB]
    queries = query_log[:SAMPLE]
    methods = [MethodSpec("exact", SubrangeEstimator(), rep, label="exact")]
    for levels in LEVELS:
        methods.append(
            MethodSpec(
                f"q{levels}",
                SubrangeEstimator(),
                quantize_representative(rep, levels=levels),
                label=f"{levels} levels",
            )
        )
    result = benchmark.pedantic(
        run_usefulness_experiment,
        args=(engine, queries, methods, THRESHOLDS),
        rounds=1,
        iterations=1,
    )
    lines = [
        "",
        f"=== ablation: quantizer levels on {DB} ({len(queries)} queries) ===",
    ]
    summaries = {}
    for spec in methods:
        rows = result.metrics[spec.key]
        summary = (
            sum(r.match for r in rows),
            sum(r.mismatch for r in rows),
            sum(r.d_nodoc for r in rows),
            sum(r.d_avgsim for r in rows),
        )
        summaries[spec.key] = summary
        lines.append(f"{spec.label:>12}  match {summary[0]:>5}  mismatch "
                     f"{summary[1]:>4}  sum d-N {summary[2]:>7.2f}  "
                     f"sum d-S {summary[3]:.3f}")
    emit("ablation_quantizer", "\n".join(lines))

    exact_match = summaries["exact"][0]
    # 256 levels (the paper's byte) is indistinguishable from exact.
    assert abs(summaries["q256"][0] - exact_match) <= max(3, 0.02 * exact_match)
    # Even 16 levels stays within a few percent — the scheme is robust.
    assert abs(summaries["q16"][0] - exact_match) <= 0.1 * exact_match
