"""Extension bench — how much staleness do the statistics tolerate?

The paper argues representative propagation "can be done infrequently as
the metadata are typically statistical in nature and can tolerate certain
degree of inaccuracy."  This bench quantifies that: engines start with 40%
of their documents and grow in ten steps to full size while a query batch
runs after every step; refresh policies from "always" to "never" are swept
and selection recall against the live oracle is measured, along with the
number of (expensive) snapshot refreshes each policy paid for.
"""

from repro.corpus import Document
from repro.metasearch import EngineServer, SubscribingBroker

from _bench_utils import emit

N_ENGINES = 6
THRESHOLD = 0.3
STEPS = 10
QUERIES_PER_STEP = 40
POLICIES = (0.0, 0.1, 0.5, float("inf"))


def _engine_documents(corpus_model, group):
    collection = corpus_model.generate_group(group)
    return [
        Document(collection.doc_id(i), terms=collection.terms_of(i))
        for i in range(len(collection))
    ]


def test_staleness_tolerance(benchmark, corpus_model, query_log):
    all_docs = {
        g: _engine_documents(corpus_model, g) for g in range(N_ENGINES)
    }
    queries = query_log[: STEPS * QUERIES_PER_STEP]

    def run_policy(refresh_growth):
        servers = {}
        broker = SubscribingBroker(refresh_growth=refresh_growth)
        for g, documents in all_docs.items():
            initial = documents[: max(1, int(0.4 * len(documents)))]
            server = EngineServer(f"group{g:02d}", list(initial))
            servers[g] = (server, initial)
            broker.register(server)
        missed = 0
        useful_total = 0
        for step in range(STEPS):
            # Engines grow by one tranche.
            for g, documents in all_docs.items():
                server, initial = servers[g]
                start = len(initial) + step * (
                    (len(documents) - len(initial)) // STEPS
                )
                end = len(initial) + (step + 1) * (
                    (len(documents) - len(initial)) // STEPS
                )
                if end > start:
                    server.add_documents(documents[start:end])
            broker.maybe_refresh()
            batch = queries[
                step * QUERIES_PER_STEP: (step + 1) * QUERIES_PER_STEP
            ]
            for query in batch:
                truth = set(broker.true_selection(query, THRESHOLD))
                selected = set(broker.select(query, THRESHOLD))
                useful_total += len(truth)
                missed += len(truth - selected)
        recall = 1.0 - missed / useful_total if useful_total else 1.0
        return recall, broker.refresh_count

    benchmark.pedantic(run_policy, args=(0.5,), rounds=1, iterations=1)

    lines = [
        "",
        f"=== representative staleness over {N_ENGINES} growing engines "
        f"({STEPS} steps x {QUERIES_PER_STEP} queries) ===",
        f"{'refresh policy':>22} {'recall':>8} {'snapshots':>10}",
    ]
    results = {}
    for policy in POLICIES:
        recall, refreshes = run_policy(policy)
        results[policy] = (recall, refreshes)
        name = (
            "always (growth>0)" if policy == 0.0
            else "never" if policy == float("inf")
            else f"growth>{policy:.0%}"
        )
        lines.append(f"{name:>22} {recall:>8.1%} {refreshes:>10}")
    emit("staleness", "\n".join(lines))

    always_recall, always_cost = results[0.0]
    lazy_recall, lazy_cost = results[0.5]
    never_recall, never_cost = results[float("inf")]
    # Fresh snapshots give the estimator's intrinsic multi-term selection
    # recall (the staleness-free ceiling).
    assert always_recall >= 0.85
    # The lazy policy keeps nearly all of that recall at a fraction of the
    # snapshot cost — the paper's tolerance claim, quantified.
    assert lazy_recall >= 0.9 * always_recall
    assert lazy_cost < 0.6 * always_cost
    # Never refreshing eventually hurts (it misses everything new), but
    # degradation is graceful, not catastrophic.
    assert never_recall < always_recall
    assert never_recall >= 0.5
