"""Extension bench — how much staleness do the statistics tolerate?

The paper argues representative propagation "can be done infrequently as
the metadata are typically statistical in nature and can tolerate certain
degree of inaccuracy."  This bench quantifies that: engines start with 40%
of their documents and grow in ten steps to full size while a query batch
runs after every step; refresh policies from "always" to "never" are swept
and selection recall against the live oracle is measured, along with the
number of (expensive) snapshot refreshes each policy paid for.

The delta-refresh lane removes the tolerance trade-off entirely: instead of
choosing between expensive freshness and cheap staleness, the broker stays
*exactly* fresh by applying the live engines' versioned
:class:`~repro.fleet.delta.RepresentativeDelta` stream.  Full-size engines
churn a few percent of their documents per step (removals and re-additions,
document count constant — the steady state of a mutating fleet) and both
broker lanes catch up after every step: the full lane pays a representative
rebuild plus a whole-snapshot wire round trip per engine (what a stateless
engine server charges for ``GET /representative``), the delta lane pays
``delta_since`` composition plus the canonical delta wire round trip plus
an in-place apply.  Mutation-time costs on the engine side (the live
server's incremental bookkeeping) are excluded from both lanes: they are
paid once per mutation regardless of how many brokers subscribe.  Selections
must match query-for-query — equal recall by construction — and the floors
assert the delta lane is at least ``RATIO_FLOOR``x cheaper in bytes shipped
AND catch-up wall-clock.  Machine-readable outcome lands in
``BENCH_staleness.json`` (override: ``REPRO_BENCH_STALENESS_JSON``).
"""

import json
import os
import time
from pathlib import Path

from repro.corpus import Document
from repro.fleet import LiveEngineServer
from repro.fleet.delta import RepresentativeDelta
from repro.metasearch import EngineServer, MetasearchBroker, SubscribingBroker
from repro.serving.wire import representative_from_wire, representative_to_wire

N_ENGINES = 6
THRESHOLD = 0.3
STEPS = int(os.environ.get("REPRO_BENCH_STALENESS_STEPS", "10"))
QUERIES_PER_STEP = int(os.environ.get("REPRO_BENCH_STALENESS_QUERIES", "40"))
POLICIES = (0.0, 0.1, 0.5, float("inf"))
JSON_PATH = Path(
    os.environ.get("REPRO_BENCH_STALENESS_JSON", "BENCH_staleness.json")
)
#: The delta lane must beat the full-snapshot lane by at least this factor
#: on both bytes shipped and catch-up seconds.
RATIO_FLOOR = 5.0


def _engine_documents(corpus_model, group):
    collection = corpus_model.generate_group(group)
    return [
        Document(collection.doc_id(i), terms=collection.terms_of(i))
        for i in range(len(collection))
    ]


def _emit_section(header: str, body: str) -> None:
    """Accumulate one ``=== header ===`` section into results/staleness.txt.

    Both tests in this module share the results file; each owns one
    section, replaced in place so either test can run alone without
    clobbering the other's output.
    """
    results_dir = Path(
        os.environ.get("REPRO_BENCH_RESULTS", "benchmarks/results")
    )
    path = results_dir / "staleness.txt"
    sections = []
    if path.exists():
        current: list = []
        for line in path.read_text(encoding="utf-8").splitlines():
            if line.startswith("=== "):
                if current:
                    sections.append(current)
                current = [line]
            elif current:
                current.append(line)
        if current:
            sections.append(current)
    sections = [s for s in sections if s[0] != header]
    mine = [header] + body.splitlines()
    sections.append(mine)
    text = "\n\n".join("\n".join(s).rstrip() for s in sections)
    print("\n" + header + "\n" + body)
    results_dir.mkdir(parents=True, exist_ok=True)
    path.write_text(text + "\n", encoding="utf-8")


def test_staleness_tolerance(benchmark, corpus_model, query_log):
    all_docs = {
        g: _engine_documents(corpus_model, g) for g in range(N_ENGINES)
    }
    queries = query_log[: STEPS * QUERIES_PER_STEP]

    def run_policy(refresh_growth):
        servers = {}
        broker = SubscribingBroker(refresh_growth=refresh_growth)
        for g, documents in all_docs.items():
            initial = documents[: max(1, int(0.4 * len(documents)))]
            server = EngineServer(f"group{g:02d}", list(initial))
            servers[g] = (server, initial)
            broker.register(server)
        missed = 0
        useful_total = 0
        for step in range(STEPS):
            # Engines grow by one tranche.
            for g, documents in all_docs.items():
                server, initial = servers[g]
                start = len(initial) + step * (
                    (len(documents) - len(initial)) // STEPS
                )
                end = len(initial) + (step + 1) * (
                    (len(documents) - len(initial)) // STEPS
                )
                if end > start:
                    server.add_documents(documents[start:end])
            broker.maybe_refresh()
            batch = queries[
                step * QUERIES_PER_STEP: (step + 1) * QUERIES_PER_STEP
            ]
            for query in batch:
                truth = set(broker.true_selection(query, THRESHOLD))
                selected = set(broker.select(query, THRESHOLD))
                useful_total += len(truth)
                missed += len(truth - selected)
        recall = 1.0 - missed / useful_total if useful_total else 1.0
        return recall, broker.refresh_count

    benchmark.pedantic(run_policy, args=(0.5,), rounds=1, iterations=1)

    lines = [
        f"{'refresh policy':>22} {'recall':>8} {'snapshots':>10}",
    ]
    results = {}
    for policy in POLICIES:
        recall, refreshes = run_policy(policy)
        results[policy] = (recall, refreshes)
        name = (
            "always (growth>0)" if policy == 0.0
            else "never" if policy == float("inf")
            else f"growth>{policy:.0%}"
        )
        lines.append(f"{name:>22} {recall:>8.1%} {refreshes:>10}")
    _emit_section(
        f"=== representative staleness over {N_ENGINES} growing engines "
        f"({STEPS} steps x {QUERIES_PER_STEP} queries) ===",
        "\n".join(lines),
    )

    always_recall, always_cost = results[0.0]
    lazy_recall, lazy_cost = results[0.5]
    never_recall, never_cost = results[float("inf")]
    # Fresh snapshots give the estimator's intrinsic multi-term selection
    # recall (the staleness-free ceiling).
    assert always_recall >= 0.85
    # The lazy policy keeps nearly all of that recall at a fraction of the
    # snapshot cost — the paper's tolerance claim, quantified.
    assert lazy_recall >= 0.9 * always_recall
    assert lazy_cost < 0.6 * always_cost
    # Never refreshing eventually hurts (it misses everything new), but
    # degradation is graceful, not catastrophic.
    assert never_recall < always_recall
    assert never_recall >= 0.5


def test_delta_refresh_vs_full_snapshot(benchmark, corpus_model, query_log):
    """Delta catch-up beats full re-snapshot >= RATIO_FLOOR x at equal
    (identical, query-for-query) selection recall."""
    from collections import deque

    from repro.corpus import Collection
    from repro.engine import SearchEngine
    from repro.representatives import build_representative

    all_docs = {
        g: _engine_documents(corpus_model, g) for g in range(N_ENGINES)
    }
    queries = query_log[: STEPS * QUERIES_PER_STEP]

    def run_lanes():
        delta_broker = MetasearchBroker()
        full_broker = MetasearchBroker()
        servers = {}
        current = {}
        reserve = {}
        versions = {}
        for g, documents in all_docs.items():
            # Engines start at full working size with a spare pool; each
            # step churns a slice out and a slice in, so the corpus stays
            # the same size while its contents drift.
            keep = max(2, int(0.85 * len(documents)))
            name = f"group{g:02d}"
            live = LiveEngineServer(
                name, list(documents[:keep]), log_limit=4 * STEPS
            )
            snapshot = live.snapshot()
            delta_broker.register(
                live,
                representative=snapshot.representative,
                version=snapshot.version,
            )
            full_broker.register(live, representative=snapshot.representative)
            servers[g] = live
            current[g] = deque(documents[:keep])
            reserve[g] = deque(documents[keep:])
            versions[g] = snapshot.version

        totals = {
            "delta_bytes": 0,
            "full_bytes": 0,
            "delta_seconds": 0.0,
            "full_seconds": 0.0,
        }
        steps = []
        mismatches = 0
        missed = 0
        useful_total = 0
        for step in range(STEPS):
            for g, live in servers.items():
                churn = max(1, len(current[g]) // 50)
                removed = [current[g].popleft() for __ in range(churn)]
                live.remove_documents([d.doc_id for d in removed])
                added = [
                    reserve[g].popleft()
                    for __ in range(min(churn, len(reserve[g])))
                ]
                if added:
                    live.add_documents(added)
                    current[g].extend(added)
                # Removed documents rejoin the pool: late steps re-add
                # previously removed ones, exercising remove-then-re-add.
                reserve[g].extend(removed)

            # Delta lane: compose the log suffix, round-trip the canonical
            # wire form, apply in place with precise invalidation.
            step_delta_bytes = 0
            started = time.perf_counter()
            for g, live in servers.items():
                delta = live.delta_since(versions[g])
                wire = delta.encode()
                step_delta_bytes += len(wire)
                delta_broker.apply_representative_delta(
                    RepresentativeDelta.decode(wire)
                )
                versions[g] = delta.to_version
            step_delta_seconds = time.perf_counter() - started

            # Full lane: what a stateless engine server charges — rebuild
            # the snapshot, round-trip the whole representative, re-register.
            step_full_bytes = 0
            started = time.perf_counter()
            for g, live in servers.items():
                rebuilt = build_representative(
                    SearchEngine(
                        Collection.from_documents(live.name, list(current[g]))
                    )
                )
                wire = json.dumps(
                    representative_to_wire(rebuilt),
                    separators=(",", ":"),
                ).encode("utf-8")
                step_full_bytes += len(wire)
                full_broker.register(
                    live,
                    representative=representative_from_wire(
                        json.loads(wire.decode("utf-8"))
                    ),
                )
            step_full_seconds = time.perf_counter() - started

            batch = queries[
                step * QUERIES_PER_STEP: (step + 1) * QUERIES_PER_STEP
            ]
            for query in batch:
                delta_selected = delta_broker.select(query, THRESHOLD)
                full_selected = full_broker.select(query, THRESHOLD)
                if delta_selected != full_selected:
                    mismatches += 1
                truth = set(delta_broker.true_selection(query, THRESHOLD))
                useful_total += len(truth)
                missed += len(truth - set(delta_selected))

            totals["delta_bytes"] += step_delta_bytes
            totals["full_bytes"] += step_full_bytes
            totals["delta_seconds"] += step_delta_seconds
            totals["full_seconds"] += step_full_seconds
            steps.append(
                {
                    "step": step,
                    "delta_bytes": step_delta_bytes,
                    "full_bytes": step_full_bytes,
                    "delta_seconds": step_delta_seconds,
                    "full_seconds": step_full_seconds,
                }
            )
        recall = 1.0 - missed / useful_total if useful_total else 1.0
        return totals, steps, mismatches, recall

    totals, steps, mismatches, recall = benchmark.pedantic(
        run_lanes, rounds=1, iterations=1
    )
    bytes_ratio = totals["full_bytes"] / max(1, totals["delta_bytes"])
    seconds_ratio = totals["full_seconds"] / max(
        1e-12, totals["delta_seconds"]
    )

    payload = {
        "bench": "staleness_delta_refresh",
        "engines": N_ENGINES,
        "steps": STEPS,
        "queries_per_step": QUERIES_PER_STEP,
        "threshold": THRESHOLD,
        "recall": recall,
        "selection_mismatches": mismatches,
        "totals": totals,
        "bytes_ratio": bytes_ratio,
        "seconds_ratio": seconds_ratio,
        "ratio_floor": RATIO_FLOOR,
        "per_step": steps,
    }
    JSON_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    _emit_section(
        f"=== delta refresh vs full re-snapshot over {N_ENGINES} growing "
        f"engines ({STEPS} steps x {QUERIES_PER_STEP} queries) ===",
        "\n".join(
            [
                f"{'lane':>22} {'bytes':>12} {'seconds':>10} {'recall':>8}",
                (
                    f"{'full re-snapshot':>22} {totals['full_bytes']:>12,}"
                    f" {totals['full_seconds']:>10.3f} {recall:>8.1%}"
                ),
                (
                    f"{'delta catch-up':>22} {totals['delta_bytes']:>12,}"
                    f" {totals['delta_seconds']:>10.3f} {recall:>8.1%}"
                ),
                (
                    f"{'ratio':>22} {bytes_ratio:>11.1f}x"
                    f" {seconds_ratio:>9.1f}x {'(identical)':>8}"
                ),
            ]
        ),
    )

    # Both lanes hold value-identical representatives (the delta apply is
    # bit-exact against a fresh rebuild), so selection agrees on every
    # single query — "at equal selection recall" by construction.
    assert mismatches == 0
    # The subsystem's reason to exist: shipping only what changed is at
    # least RATIO_FLOOR x cheaper in bytes AND catch-up wall-clock.
    assert bytes_ratio >= RATIO_FLOOR, f"bytes ratio {bytes_ratio:.2f}"
    assert seconds_ratio >= RATIO_FLOOR, f"seconds ratio {seconds_ratio:.2f}"
