"""Helpers shared by the benchmark modules (importable, unlike conftest)."""

from __future__ import annotations

import os
from pathlib import Path

from repro.evaluation.paper_reference import PAPER_METHODS, paper_table

BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "6234"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1999"))

THRESHOLDS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)


def emit(name: str, text: str) -> None:
    """Print ``text`` and persist it under the bench results directory.

    pytest captures stdout of passing tests, so each bench also writes its
    rendered table to ``benchmarks/results/<name>.txt`` (override the
    directory with ``REPRO_BENCH_RESULTS``) — the artifact EXPERIMENTS.md
    is compiled from.
    """
    print(text)
    results_dir = Path(
        os.environ.get("REPRO_BENCH_RESULTS", "benchmarks/results")
    )
    results_dir.mkdir(parents=True, exist_ok=True)
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def print_with_reference(table_id: str, rendered: str) -> None:
    """Emit a regenerated table next to the paper's published values."""
    lines = [
        "",
        f"=== {table_id}: reproduction ({BENCH_QUERIES} queries) ===",
        rendered,
    ]
    reference = paper_table(table_id)
    if not reference:
        lines.append(
            f"--- {table_id}: published values unavailable "
            f"(table damaged in the source scan) ---"
        )
        emit(table_id, "\n".join(lines))
        return
    lines.append(f"--- {table_id}: published values (paper, 6234 queries) ---")
    multi = len(reference[0].cells) > 1
    if multi:
        header = ["T", "U"] + [f"{m}: m/mis d-N d-S" for m in PAPER_METHODS]
    else:
        header = ["T", "m/mis", "d-N", "d-S"]
    lines.append("  ".join(header))
    for row in reference:
        if multi:
            cells = [f"{row.threshold:.1f}", str(row.useful)]
            for method in PAPER_METHODS:
                cell = row.cells[method]
                cells.append(
                    f"{cell.match}/{cell.mismatch} {cell.d_nodoc:.2f} "
                    f"{cell.d_avgsim:.3f}"
                )
        else:
            cell = next(iter(row.cells.values()))
            cells = [
                f"{row.threshold:.1f}",
                f"{cell.match}/{cell.mismatch}",
                f"{cell.d_nodoc:.2f}",
                f"{cell.d_avgsim:.3f}",
            ]
        lines.append("  ".join(cells))
    emit(table_id, "\n".join(lines))
