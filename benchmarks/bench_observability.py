"""Observability-overhead bench — the instrumentation must be free by default.

Every ``MetasearchBroker.search()`` now records a :class:`QueryTrace` and,
when a real :class:`MetricsRegistry` is attached, a few dozen counter/
histogram updates.  Two properties are checked here:

* the **default** (``NullRegistry``) broker pays only no-op instrument calls
  plus the trace's ``perf_counter`` reads — a per-search cost bounded at
  under 5% of the measured search time itself;
* attaching a **real** registry stays cheap enough that operators can leave
  it on in production (bounded well below 2x, typically ~1x).
"""

import time

from repro.corpus import Query
from repro.engine import SearchEngine
from repro.metasearch import MetasearchBroker
from repro.obs import NULL_REGISTRY, MetricsRegistry, QueryTrace
from repro.representatives import build_representative

from _bench_utils import BENCH_QUERIES, emit

FLEET = 8
SAMPLE = min(BENCH_QUERIES, 60)
THRESHOLD = 0.3

#: Upper bound on no-op instrumentation cost as a share of search time.
NULL_OVERHEAD_SHARE = 0.05
#: Generous wall-clock ratio bound for the real-registry broker; the runs
#: share one process, so scheduler noise on a loaded CI box is expected.
REAL_REGISTRY_RATIO = 2.0

#: Instrument ops one ``search()`` performs beyond PR 1's code: broker
#: counters/histograms, dispatcher counters + per-engine latency histograms,
#: estimator expansion metrics, and the trace's span bookkeeping.
OPS_PER_SEARCH = 40


def _make_broker(corpus_model, engines, representatives, registry=None):
    broker = MetasearchBroker(cache_size=0, registry=registry)
    for engine, representative in zip(engines, representatives):
        broker.register(engine, representative=representative)
    return broker


def _run_queries(broker, queries):
    for query in queries:
        broker.search(query, THRESHOLD)


def _timed(broker, queries):
    start = time.perf_counter()
    _run_queries(broker, queries)
    return time.perf_counter() - start


def test_null_registry_is_free(benchmark, corpus_model, query_log):
    """Default-path searches must not pay for the observability layer."""
    engines = [
        SearchEngine(corpus_model.generate_group(g)) for g in range(FLEET)
    ]
    representatives = [build_representative(e) for e in engines]
    null_broker = _make_broker(corpus_model, engines, representatives)
    real_broker = _make_broker(
        corpus_model, engines, representatives, registry=MetricsRegistry()
    )
    queries = query_log[:SAMPLE]

    # Warm both paths (index structures, caches inside numpy) before timing.
    _run_queries(null_broker, queries[:3])
    _run_queries(real_broker, queries[:3])

    t_null = _timed(null_broker, queries)
    t_real = _timed(real_broker, queries)
    benchmark.pedantic(
        _run_queries, args=(null_broker, queries), rounds=2, iterations=1
    )

    # Cost of the no-op instruments themselves, measured directly: the ops
    # a single search adds on the default path, times a large multiplier
    # for a stable reading.
    reps = 20_000
    counter = NULL_REGISTRY.counter("bench")
    histogram = NULL_REGISTRY.histogram("bench.h")
    start = time.perf_counter()
    for _ in range(reps):
        counter.inc()
        histogram.observe(0.1)
    op_cost = (time.perf_counter() - start) / (2 * reps)

    trace_reps = 2_000
    start = time.perf_counter()
    for _ in range(trace_reps):
        trace = QueryTrace()
        with trace.span("estimate"):
            pass
        with trace.span("select"):
            pass
        with trace.span("dispatch"):
            pass
        trace.add("dispatch:engine", 0.0, ok=True)
        with trace.span("merge"):
            pass
    trace_cost = (time.perf_counter() - start) / trace_reps

    per_search = t_null / len(queries)
    added = OPS_PER_SEARCH * op_cost + trace_cost
    share = added / per_search

    emit(
        "observability_overhead",
        "\n".join(
            [
                "",
                f"=== observability overhead: {FLEET} engines, "
                f"{len(queries)} queries, T={THRESHOLD} ===",
                f"null registry      : {t_null:.3f}s "
                f"({per_search * 1000:.2f}ms/search)",
                f"real registry      : {t_real:.3f}s "
                f"({t_real / len(queries) * 1000:.2f}ms/search, "
                f"{t_real / t_null:.2f}x)",
                f"no-op instrument   : {op_cost * 1e9:.0f}ns/op",
                f"trace bookkeeping  : {trace_cost * 1e6:.1f}us/search",
                f"instrumented share : {share:.2%} of a search "
                f"(bound {NULL_OVERHEAD_SHARE:.0%})",
            ]
        ),
    )

    # The default path's entire instrumentation budget — every no-op call
    # plus the always-on trace — stays under 5% of one search.
    assert share < NULL_OVERHEAD_SHARE
    # A real registry must remain cheap enough to leave on.
    assert t_real < t_null * REAL_REGISTRY_RATIO


def test_real_registry_collects_while_benched(corpus_model, query_log):
    """Sanity: the timed real-registry path actually recorded the workload."""
    engines = [
        SearchEngine(corpus_model.generate_group(g)) for g in range(4)
    ]
    representatives = [build_representative(e) for e in engines]
    registry = MetricsRegistry()
    broker = _make_broker(
        corpus_model, engines, representatives, registry=registry
    )
    queries = query_log[: min(SAMPLE, 20)]
    _run_queries(broker, queries)
    assert registry.value("broker.searches") == float(len(queries))
    assert registry.value("dispatch.fanouts") == float(len(queries))
    assert registry.histogram("broker.search.seconds").count == len(queries)
