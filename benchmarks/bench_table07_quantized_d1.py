"""Table 7 — subrange method on D1 with every representative number coded
in one byte (Section 3.2).  The paper's finding: essentially no difference
from Tables 1-2.  Benchmarks the quantization pass itself."""

from repro.evaluation import format_combined_table
from repro.representatives import quantize_representative

from _bench_utils import print_with_reference

DB = "D1"
TABLE = "table7"


def test_table07_quantized_d1(benchmark, results, databases):
    __, rep = databases[DB]
    benchmark(quantize_representative, rep)
    result = results.quantized(DB)
    print_with_reference(TABLE, format_combined_table(result, "subrange"))
    # Robustness claim: quantized match within a whisker of the exact run.
    exact = results.exact(DB).metrics["subrange"]
    quantized = result.metrics["subrange"]
    for e_row, q_row in zip(exact, quantized):
        assert abs(e_row.match - q_row.match) <= max(3, 0.02 * e_row.match)
