"""Fleet-scaling bench — the columnar representative store vs the scalar path.

Sweeps fleet width (default 16/64/256 engines): at each width a scalar
broker (dict-of-dataclasses representatives, per-engine Python estimation)
and a columnar broker (shared-vocabulary
:class:`~repro.representatives.columnar.FleetRepresentativeStore`,
engine-axis vectorized estimation) answer the same Zipf query log over the
same thresholds with *both caches disabled* — pure selection cost.  For
every width x estimator the bench:

* asserts scalar and columnar estimates are **exactly equal** on every
  (engine, query, threshold) triple,
* records throughput and p50/p95 per-query selection latency — the two
  paths timed interleaved per query, best of two sweeps, so machine-load
  drift cannot land on one side of the speedup ratio, and
* measures resident representative memory both ways.

It also re-verifies the paper's single-term correct-identification
guarantee *through the columnar broker* on the smallest fleet.

Machine-readable trajectory lands in ``BENCH_fleet_scaling.json`` (path
override: ``REPRO_BENCH_FLEET_JSON``) alongside the human-readable
``benchmarks/results/fleet_scaling.txt``.  Knobs:

* ``REPRO_BENCH_FLEET_WIDTHS`` — comma list, default ``16,64,256``.
* ``REPRO_BENCH_FLEET_QUERIES`` — queries per width, default ``20``.
* ``REPRO_BENCH_SEED`` — corpus seed.

Hard floors (asserted only when the sweep reaches the relevant width, so
tiny CI configurations still run everything): at >=256 engines the
expansion-based array-parallel paths must beat scalar by >=5x — basic
via its two-point expansion grid, and subrange via the batched
``BatchedGenFunc`` product (the CSR-ragged, width-bucketed merge kernel
that replicates ``GenFunc.product`` bit-for-bit, so bit-identity no
longer pins it to per-engine Python).  Memory at >=64 engines must be
>=10x smaller than the dict baseline.  gloss-hc is Amdahl-capped well
below its kernel speedup — both paths spend ~half of each call building
the per-engine ``Usefulness``/``EstimatedUsefulness`` rows the broker
API promises, which caps the end-to-end ratio right around 2x — so its
floor sits at 1.8x, leaving noise headroom below the cap instead of
asserting the cap itself.

The sweep must also complete with **zero scalar-fallback demotions**:
every engine row of every query is required to flow through the batched
kernel (``repro.core.fallback_count`` stays 0), so the floors measure
the fast path and nothing else.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.core import (
    BasicEstimator,
    GlossHighCorrelationEstimator,
    SubrangeEstimator,
    fallback_count,
    reset_fallback_count,
)
from repro.corpus import Query
from repro.corpus.synth import NewsgroupModel, QueryLogModel
from repro.engine import SearchEngine
from repro.metasearch import MetasearchBroker
from repro.representatives import build_representative

from _bench_utils import BENCH_SEED, emit

WIDTHS = [
    int(w)
    for w in os.environ.get("REPRO_BENCH_FLEET_WIDTHS", "16,64,256").split(",")
]
FLEET_QUERIES = int(os.environ.get("REPRO_BENCH_FLEET_QUERIES", "20"))
JSON_PATH = Path(
    os.environ.get("REPRO_BENCH_FLEET_JSON", "BENCH_fleet_scaling.json")
)
DOCS_PER_ENGINE = 30
THRESHOLDS = (0.1, 0.3, 0.6)

#: Floors asserted on the widest fleet of the sweep when it reaches 256
#: engines (see the module docstring for why each sits where it does).
SPEEDUP_FLOORS = {"basic": 5.0, "gloss-hc": 1.8, "subrange": 5.0}
MEMORY_FLOOR = 10.0

ESTIMATORS = (
    ("subrange", SubrangeEstimator),
    ("basic", BasicEstimator),
    ("gloss-hc", GlossHighCorrelationEstimator),
)


def _build_fleet(width: int):
    model = NewsgroupModel(
        vocab_size=4000,
        topic_size=120,
        topic_band=(50, 1500),
        mean_length=80,
        seed=BENCH_SEED,
        group_sizes=[DOCS_PER_ENGINE] * width,
    )
    engines = [SearchEngine(model.generate_group(g)) for g in range(width)]
    representatives = {e.name: build_representative(e) for e in engines}
    queries = QueryLogModel(model, seed=42).generate(FLEET_QUERIES)
    return engines, representatives, queries


def _make_broker(engines, representatives, estimator, columnar: bool):
    broker = MetasearchBroker(
        estimator=estimator,
        columnar=columnar,
        cache_size=0,
        polycache_size=0,
    )
    for engine in engines:
        broker.register(engine, representative=representatives[engine.name])
    return broker


def _run_selection_pair(scalar, columnar, queries, passes=2):
    """Estimate rows plus per-query latency for both paths.

    The two brokers are timed *interleaved* (scalar then columnar on each
    query) and each query's latency is the minimum over ``passes`` sweeps:
    on a shared machine, CPU-speed drift between two long sequential
    blocks would land entirely on one side of the speedup ratio, while
    interleaving spreads it evenly and the per-query minimum reads the
    steady state through transient contention.
    """
    scalar_rows: List = []
    columnar_rows: List = []
    scalar_lat = [float("inf")] * len(queries)
    columnar_lat = [float("inf")] * len(queries)
    for sweep in range(passes):
        scalar_rows, columnar_rows = [], []
        for i, query in enumerate(queries):
            start = time.perf_counter()
            for threshold in THRESHOLDS:
                scalar_rows.append(scalar.estimate_all(query, threshold))
            scalar_lat[i] = min(scalar_lat[i], time.perf_counter() - start)
            start = time.perf_counter()
            for threshold in THRESHOLDS:
                columnar_rows.append(columnar.estimate_all(query, threshold))
            columnar_lat[i] = min(
                columnar_lat[i], time.perf_counter() - start
            )
    return scalar_rows, columnar_rows, scalar_lat, columnar_lat


def _lat_stats(latencies: List[float]) -> Dict[str, float]:
    arr = np.asarray(latencies)
    total = float(arr.sum())
    return {
        "seconds": total,
        "queries_per_s": len(arr) / total if total > 0 else float("inf"),
        "p50_ms": float(np.percentile(arr, 50)) * 1000.0,
        "p95_ms": float(np.percentile(arr, 95)) * 1000.0,
    }


def _dict_rep_bytes(representative) -> int:
    """Resident bytes of one dict-of-dataclasses representative: the stats
    dict, its term keys, the TermStats instances (and their per-instance
    ``__dict__``), and the boxed float fields."""
    stats_map = next(
        value
        for value in vars(representative).values()
        if isinstance(value, dict) and len(value) == len(representative)
    )
    total = (
        sys.getsizeof(representative)
        + sys.getsizeof(vars(representative))
        + sys.getsizeof(stats_map)
    )
    for term, stats in stats_map.items():
        total += sys.getsizeof(term) + sys.getsizeof(stats)
        if hasattr(stats, "__dict__"):
            total += sys.getsizeof(vars(stats))
        for value in (
            stats.probability,
            stats.mean,
            stats.std,
            stats.max_weight,
        ):
            if value is not None:
                total += sys.getsizeof(value)
    return total


def _verify_single_term_guarantee(engines, representatives, broker) -> int:
    """The paper's single-term correct-identification property, answered by
    the columnar broker's public estimate path against the true oracle."""
    counts: Dict[str, int] = {}
    for engine in engines:
        for term in engine.collection.vocabulary:
            counts[term] = counts.get(term, 0) + 1
    shared = sorted(t for t, c in counts.items() if c >= 2)
    rng = np.random.default_rng(0)
    rng.shuffle(shared)
    checked = 0
    for term in shared[:25]:
        query = Query.from_terms([term])
        maxima = sorted(
            {
                representatives[e.name].get(term).max_weight
                for e in engines
                if representatives[e.name].get(term) is not None
            },
            reverse=True,
        )
        if len(maxima) < 2 or maxima[0] - maxima[1] < 1e-9:
            continue
        threshold = (maxima[0] + maxima[1]) / 2
        selected = {
            est.engine
            for est in broker.estimate_all(query, threshold)
            if est.usefulness.identifies_useful
        }
        truth = {
            e.name for e in engines if e.max_similarity(query) > threshold
        }
        assert selected == truth, (
            f"single-term guarantee broken through the columnar path: "
            f"term {term!r} at {threshold} selected {sorted(selected)} "
            f"vs truth {sorted(truth)}"
        )
        checked += 1
    assert checked >= 5, (
        f"guarantee check exercised only {checked} (term, threshold) cases"
    )
    return checked


def test_fleet_scaling(benchmark):
    report = {
        "seed": BENCH_SEED,
        "queries": FLEET_QUERIES,
        "thresholds": list(THRESHOLDS),
        "docs_per_engine": DOCS_PER_ENGINE,
        "widths": [],
    }
    lines = [
        "",
        f"=== fleet scaling: scalar vs columnar selection "
        f"({FLEET_QUERIES} Zipf queries x {len(THRESHOLDS)} thresholds, "
        f"caches off) ===",
    ]
    guarantee_checked = 0
    widest_result = None
    reset_fallback_count()
    for width in sorted(WIDTHS):
        engines, representatives, queries = _build_fleet(width)
        total_docs = sum(e.n_documents for e in engines)
        entry = {"width": width, "documents": total_docs, "estimators": {}}
        lines.append(f"-- width {width} ({total_docs} documents) --")
        lines.append(
            f"{'estimator':<10} {'path':<9} {'seconds':>8} {'q/s':>8} "
            f"{'p50 ms':>8} {'p95 ms':>8} {'speedup':>8}"
        )
        columnar_broker = None
        for est_name, est_cls in ESTIMATORS:
            scalar = _make_broker(engines, representatives, est_cls(), False)
            columnar = _make_broker(engines, representatives, est_cls(), True)
            # Warm both paths once (columnar packs the fleet arrays here)
            # so the timed loop measures steady-state selection.
            scalar.estimate_all(queries[0], THRESHOLDS[0])
            columnar.estimate_all(queries[0], THRESHOLDS[0])
            scalar_rows, columnar_rows, scalar_lat, columnar_lat = (
                _run_selection_pair(scalar, columnar, queries)
            )
            assert columnar_rows == scalar_rows, (
                f"columnar estimates diverged from scalar "
                f"(width={width}, estimator={est_name})"
            )
            stats = {
                "scalar": _lat_stats(scalar_lat),
                "columnar": _lat_stats(columnar_lat),
            }
            speedup = (
                stats["scalar"]["seconds"] / stats["columnar"]["seconds"]
                if stats["columnar"]["seconds"] > 0
                else float("inf")
            )
            stats["speedup"] = speedup
            stats["exact_equal"] = True
            entry["estimators"][est_name] = stats
            for path in ("scalar", "columnar"):
                s = stats[path]
                lines.append(
                    f"{est_name:<10} {path:<9} {s['seconds']:>8.3f} "
                    f"{s['queries_per_s']:>8.1f} {s['p50_ms']:>8.2f} "
                    f"{s['p95_ms']:>8.2f} "
                    f"{speedup if path == 'columnar' else 1.0:>7.1f}x"
                )
            if est_name == "subrange":
                columnar_broker = columnar
        dict_bytes = sum(
            _dict_rep_bytes(representatives[e.name]) for e in engines
        )
        store = columnar_broker.fleet
        columnar_bytes = store.nbytes
        vocab_bytes = store.vocab_nbytes
        entry["memory"] = {
            "dict_bytes": dict_bytes,
            "columnar_bytes": columnar_bytes,
            "vocab_bytes": vocab_bytes,
            "ratio": dict_bytes / columnar_bytes,
            "ratio_with_vocab": dict_bytes / (columnar_bytes + vocab_bytes),
            "entries": store.total_entries,
        }
        lines.append(
            f"memory: dict {dict_bytes / 1e6:.2f} MB -> columnar "
            f"{columnar_bytes / 1e6:.2f} MB "
            f"({entry['memory']['ratio']:.1f}x smaller; "
            f"+vocab {vocab_bytes / 1e6:.2f} MB shared -> "
            f"{entry['memory']['ratio_with_vocab']:.1f}x)"
        )
        if width == min(WIDTHS):
            guarantee_checked = _verify_single_term_guarantee(
                engines, representatives, columnar_broker
            )
            lines.append(
                f"single-term guarantee via columnar broker: "
                f"{guarantee_checked} (term, threshold) cases exact"
            )
        report["widths"].append(entry)
        widest_result = entry

    report["guarantee_checked"] = guarantee_checked
    report["fallback_invocations"] = fallback_count()
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    lines.append(f"json: {JSON_PATH}")
    emit("fleet_scaling", "\n".join(lines))

    assert fallback_count() == 0, (
        f"{fallback_count()} engine rows were demoted to the scalar "
        f"GenFunc during the sweep — the batched kernel must cover every "
        f"benchmarked configuration (see repro.core.fallback_count)"
    )
    if widest_result["width"] >= 256:
        for est_name, floor in SPEEDUP_FLOORS.items():
            speedup = widest_result["estimators"][est_name]["speedup"]
            assert speedup >= floor, (
                f"{est_name} columnar speedup {speedup:.2f}x below the "
                f"{floor}x floor at width {widest_result['width']}"
            )
    if widest_result["width"] >= 64:
        ratio = widest_result["memory"]["ratio"]
        assert ratio >= MEMORY_FLOOR, (
            f"columnar memory only {ratio:.1f}x smaller than the dict "
            f"baseline at width {widest_result['width']} "
            f"(floor {MEMORY_FLOOR}x)"
        )

    # Benchmark kernel: steady-state columnar selection on a small fleet.
    engines, representatives, queries = _build_fleet(min(WIDTHS))
    broker = _make_broker(engines, representatives, SubrangeEstimator(), True)
    broker.estimate_all(queries[0], THRESHOLDS[0])
    final_query = queries[0]
    benchmark(lambda: broker.estimate_all(final_query, THRESHOLDS[0]))
