"""Table 3 — match/mismatch on D2 (merge of the two largest newsgroups).

D2 is less homogeneous than D1, so the paper expects — and the shape
assertions check — more mismatches than on D1 while the method ordering is
unchanged.  Benchmarks the three-method evaluation kernel on D2.
"""

from repro.core import (
    GlossHighCorrelationEstimator,
    PreviousMethodEstimator,
    SubrangeEstimator,
)
from repro.evaluation import MethodSpec, format_match_table, run_usefulness_experiment

from _bench_utils import THRESHOLDS, print_with_reference

DB = "D2"
TABLE = "table3"


def test_table03_match_d2(benchmark, results, databases, sample_queries):
    engine, rep = databases[DB]
    methods = [
        MethodSpec("gloss-hc", GlossHighCorrelationEstimator(), rep),
        MethodSpec("prev", PreviousMethodEstimator(), rep),
        MethodSpec("subrange", SubrangeEstimator(), rep),
    ]
    benchmark(
        run_usefulness_experiment, engine, sample_queries, methods, THRESHOLDS
    )
    result = results.exact(DB)
    print_with_reference(TABLE, format_match_table(result))
    rows = result.metrics
    for i in range(len(THRESHOLDS)):
        assert rows["subrange"][i].match >= rows["prev"][i].match
        assert rows["prev"][i].match >= rows["gloss-hc"][i].match
    # Inhomogeneity effect: D2 produces at least as many subrange
    # mismatches as D1 in total.
    d1_rows = results.exact("D1").metrics["subrange"]
    assert sum(r.mismatch for r in rows["subrange"]) >= sum(
        r.mismatch for r in d1_rows
    )
