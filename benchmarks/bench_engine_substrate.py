"""Substrate bench — indexing throughput and query latency.

Not a paper table: operational numbers for the retrieval substrate every
experiment stands on.  Benchmarks index construction over D2 (1,466 docs)
and reports exact-search latency percentiles across the query log, plus
the index save/load round-trip cost.
"""

import time

import numpy as np

from repro.index import InvertedIndex, load_index, save_index

from _bench_utils import emit

DB = "D2"
SAMPLE = 1000


def test_engine_substrate(benchmark, databases, query_log, tmp_path_factory):
    engine, __ = databases[DB]
    collection = engine.collection
    queries = query_log[:SAMPLE]

    benchmark(InvertedIndex, collection)

    latencies = []
    for query in queries:
        start = time.perf_counter()
        engine.similarities(query)
        latencies.append((time.perf_counter() - start) * 1e6)
    latencies = np.asarray(latencies)

    tmp_dir = tmp_path_factory.mktemp("index-store")
    path = tmp_dir / "d2.npz"
    save_start = time.perf_counter()
    save_index(engine.index, path)
    save_ms = (time.perf_counter() - save_start) * 1000
    load_start = time.perf_counter()
    loaded = load_index(path)
    load_ms = (time.perf_counter() - load_start) * 1000

    emit(
        "engine_substrate",
        "\n".join(
            [
                "",
                f"=== retrieval substrate on {DB} "
                f"({collection.n_documents} docs, "
                f"{collection.n_terms} terms) ===",
                f"exact search latency over {len(queries)} queries (us): "
                f"p50 {np.percentile(latencies, 50):.0f}  "
                f"p95 {np.percentile(latencies, 95):.0f}  "
                f"p99 {np.percentile(latencies, 99):.0f}",
                f"index save: {save_ms:.0f} ms "
                f"({path.stat().st_size / 1024:.0f} KiB compressed)  "
                f"load: {load_ms:.0f} ms",
            ]
        ),
    )

    assert loaded.n_terms == engine.index.n_terms
    # Exact search stays interactive.
    assert np.percentile(latencies, 99) < 100_000  # < 100 ms
