"""Table 4 — d-N and d-S on D2.  Benchmarks the previous-method kernel
(threshold-dependent, so it re-expands per threshold — the costly path)."""

from repro.core import PreviousMethodEstimator
from repro.evaluation import format_error_table

from _bench_utils import THRESHOLDS, print_with_reference

DB = "D2"
TABLE = "table4"


def test_table04_error_d2(benchmark, results, databases, sample_queries):
    __, rep = databases[DB]
    estimator = PreviousMethodEstimator()

    def estimate_all():
        for query in sample_queries:
            estimator.estimate_many(query, rep, THRESHOLDS)

    benchmark(estimate_all)
    result = results.exact(DB)
    print_with_reference(TABLE, format_error_table(result))
    rows = result.metrics
    # Subrange dominates the high-correlation baseline at every threshold;
    # against the previous method we assert on totals (our VLDB'98
    # reconstruction estimates AvgSim more sharply than the original, so
    # individual thresholds can tie — see EXPERIMENTS.md).
    for i in range(len(THRESHOLDS)):
        assert rows["subrange"][i].d_avgsim <= rows["gloss-hc"][i].d_avgsim
    total = lambda key, field: sum(getattr(r, field) for r in rows[key])
    assert total("subrange", "d_nodoc") <= total("prev", "d_nodoc")
    assert total("subrange", "d_avgsim") <= total("gloss-hc", "d_avgsim")
