"""Extension bench — document-count-driven retrieval allocation.

Demonstrates the usefulness measure's threshold-awareness end to end: for a
desired document count k the broker inverts the fleet's expected NoDoc to a
threshold and hands each engine an integer quota.  Measures how many of the
true global top-k documents the quota-driven retrieval recovers versus
querying every engine for k documents (the wasteful baseline).
"""

import numpy as np

from _bench_utils import emit
from repro.engine import SearchEngine
from repro.metasearch import allocate_documents

K = 10
SAMPLE = 150


def test_allocation_recovers_top_k(benchmark, corpus_model, query_log):
    engines = {
        f"group{g:02d}": SearchEngine(corpus_model.generate_group(g))
        for g in range(8)
    }
    from repro.representatives import build_representative

    representatives = {
        name: build_representative(engine) for name, engine in engines.items()
    }
    queries = [q for q in query_log[: SAMPLE * 2] if q.n_terms >= 2][:SAMPLE]

    def allocate_sample():
        for query in queries[:25]:
            allocate_documents(query, representatives, K)

    benchmark(allocate_sample)

    recovered = []
    invocations_saved = []
    for query in queries:
        # Global truth: the top-K documents across the fleet.
        all_hits = []
        for name, engine in engines.items():
            all_hits.extend(engine.top_k(query, K))
        all_hits.sort(reverse=True)
        truth_ids = {h.doc_id for h in all_hits[:K]}
        if not truth_ids:
            continue

        quotas = allocate_documents(query, representatives, K)
        retrieved = []
        for name, quota in quotas.items():
            if quota > 0:
                retrieved.extend(engines[name].top_k(query, quota))
        retrieved.sort(reverse=True)
        got_ids = {h.doc_id for h in retrieved[:K]}
        recovered.append(len(truth_ids & got_ids) / len(truth_ids))
        invocations_saved.append(
            1.0 - sum(1 for q in quotas.values() if q > 0) / len(engines)
        )

    mean_recall = float(np.mean(recovered))
    mean_saved = float(np.mean(invocations_saved))
    emit(
        "allocation",
        "\n".join(
            [
                "",
                f"=== top-{K} allocation over {len(engines)} engines "
                f"({len(recovered)} queries) ===",
                f"mean top-{K} recall via quotas : {mean_recall:.1%}",
                f"mean engine invocations saved  : {mean_saved:.1%}",
            ]
        ),
    )

    # Quota-driven retrieval must recover the vast majority of the true
    # top-k while skipping a meaningful share of engines.
    assert mean_recall >= 0.75
    assert mean_saved >= 0.2
