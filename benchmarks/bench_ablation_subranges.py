"""Ablation — how many subranges does the method need?

Sweeps equal-mass schemes (1, 2, 4, 8 subranges, each plus the max-weight
singleton) against the paper's tuned six-subrange configuration on D1.
The paper asserts narrower top subranges help at high thresholds; this
bench quantifies it on the synthetic corpus.
"""

from repro.core import SubrangeEstimator
from repro.evaluation import MethodSpec, run_usefulness_experiment
from repro.representatives import SubrangeScheme

from _bench_utils import THRESHOLDS, emit

DB = "D1"
SAMPLE = 1200


def test_ablation_subrange_count(benchmark, results, databases, query_log):
    engine, rep = databases[DB]
    queries = query_log[:SAMPLE]
    methods = [
        MethodSpec(
            f"equal-{k}",
            SubrangeEstimator(scheme=SubrangeScheme.equal(k, include_max=True)),
            rep,
            label=f"{k} equal subranges + max",
        )
        for k in (1, 2, 4, 8)
    ]
    methods.append(MethodSpec("paper-six", SubrangeEstimator(), rep,
                              label="paper 6-subrange"))
    result = benchmark.pedantic(
        run_usefulness_experiment,
        args=(engine, queries, methods, THRESHOLDS),
        rounds=1,
        iterations=1,
    )
    lines = [
        "",
        f"=== ablation: subrange count on {DB} ({len(queries)} queries) ===",
        f"{'scheme':>24}  {'match':>6}  {'mismatch':>8}  "
        f"{'sum d-N':>8}  {'sum d-S':>8}",
    ]
    summaries = {}
    for spec in methods:
        rows = result.metrics[spec.key]
        summary = (
            sum(r.match for r in rows),
            sum(r.mismatch for r in rows),
            sum(r.d_nodoc for r in rows),
            sum(r.d_avgsim for r in rows),
        )
        summaries[spec.key] = summary
        lines.append(f"{spec.label:>24}  {summary[0]:>6}  {summary[1]:>8}  "
                     f"{summary[2]:>8.2f}  {summary[3]:>8.3f}")
    emit("ablation_subranges", "\n".join(lines))

    # More subranges monotonically (weakly) improves NoDoc error from 1->4.
    assert summaries["equal-4"][2] <= summaries["equal-1"][2]
    # The tuned paper scheme is competitive with the best equal scheme.
    best_equal_ds = min(summaries[f"equal-{k}"][3] for k in (1, 2, 4, 8))
    assert summaries["paper-six"][3] <= best_equal_ds * 1.25
