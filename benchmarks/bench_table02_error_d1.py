"""Table 2 — d-N and d-S on D1 for the three estimation methods.

Shares the Table 1 sweep (one expansion answers both tables, the paper's
"little additional effort" point) and benchmarks the subrange estimator's
threshold-independent expansion kernel in isolation.
"""

from repro.core import SubrangeEstimator
from repro.evaluation import format_error_table

from _bench_utils import THRESHOLDS, print_with_reference

DB = "D1"
TABLE = "table2"


def test_table02_error_d1(benchmark, results, databases, sample_queries):
    __, rep = databases[DB]
    estimator = SubrangeEstimator()

    def expand_all():
        for query in sample_queries:
            estimator.estimate_many(query, rep, THRESHOLDS)

    benchmark(expand_all)
    result = results.exact(DB)
    print_with_reference(TABLE, format_error_table(result))
    # The paper's conclusion: subrange has the smallest d-S at every
    # threshold and the smallest total d-N.
    rows = result.metrics
    for i in range(len(THRESHOLDS)):
        assert rows["subrange"][i].d_avgsim <= rows["gloss-hc"][i].d_avgsim
    total = lambda key: sum(r.d_nodoc for r in rows[key])
    assert total("subrange") <= total("prev") <= total("gloss-hc")
