"""Ablation — what does the normal approximation cost?

Section 3.1 approximates subrange medians as ``w + c * sigma`` "since it is
expensive to find and to store" the true percentiles.  This bench runs the
subrange method with (a) normal-approximated medians (the paper's choice,
20 B/term) and (b) exact empirical medians (32 B/term with the six-subrange
scheme) against ground truth on D1, quantifying the accuracy the paper
traded for 12 bytes per term.
"""

from repro.core import EmpiricalSubrangeEstimator, SubrangeEstimator
from repro.evaluation import MethodSpec, run_usefulness_experiment
from repro.representatives import build_empirical_representative

from _bench_utils import THRESHOLDS, emit

DB = "D1"
SAMPLE = 1200


def test_ablation_empirical_medians(benchmark, databases, query_log):
    engine, normal_rep = databases[DB]
    empirical_rep = build_empirical_representative(engine)
    queries = query_log[:SAMPLE]
    methods = [
        MethodSpec("normal", SubrangeEstimator(), normal_rep,
                   label="normal-approximated medians"),
        MethodSpec("empirical", EmpiricalSubrangeEstimator(), empirical_rep,
                   label="exact empirical medians"),
    ]
    result = benchmark.pedantic(
        run_usefulness_experiment,
        args=(engine, queries, methods, THRESHOLDS),
        rounds=1,
        iterations=1,
    )
    lines = [
        "",
        f"=== ablation: normal vs empirical medians on {DB} "
        f"({len(queries)} queries) ===",
        f"{'variant':>30} {'match':>6} {'mismatch':>9} "
        f"{'sum d-N':>8} {'sum d-S':>8}",
    ]
    summaries = {}
    for spec in methods:
        rows = result.metrics[spec.key]
        summary = (
            sum(r.match for r in rows),
            sum(r.mismatch for r in rows),
            sum(r.d_nodoc for r in rows),
            sum(r.d_avgsim for r in rows),
        )
        summaries[spec.key] = summary
        lines.append(f"{spec.label:>30} {summary[0]:>6} {summary[1]:>9} "
                     f"{summary[2]:>8.2f} {summary[3]:>8.3f}")
    emit("ablation_empirical", "\n".join(lines))

    # Exact percentiles must not lose to the approximation on NoDoc error,
    # and the approximation must stay close — the paper's trade is sound.
    assert summaries["empirical"][2] <= summaries["normal"][2] * 1.05
    assert summaries["normal"][2] <= summaries["empirical"][2] * 1.75
    # Both keep the single-term guarantee, so matches stay comparable.
    assert abs(summaries["normal"][0] - summaries["empirical"][0]) <= (
        0.05 * summaries["empirical"][0]
    )
