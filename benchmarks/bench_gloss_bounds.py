"""Section 2 claim check — do the gGlOSS estimates bound the true sim-sum?

The paper states that for the *similarity-sum* measure "the estimates
produced by the two methods in gGlOSS form lower and upper bounds to the
true similarity sum" (and that for NoDoc they do not).  That bounding is a
theorem inside gGlOSS's idealized weight model; this bench measures how
often it survives contact with an actual corpus, per threshold.  Since
sim-sum = NoDoc x AvgSim, no new estimator code is involved.

Measured finding (recorded in EXPERIMENTS.md): the disjoint estimate is an
increasingly reliable *lower* bound as the threshold grows, while the
high-correlation estimate's *upper*-bound property collapses at high
thresholds (its bands drop below T wholesale) — empirical support for the
paper's decision to use its own measure and estimator instead.
"""

from repro.core import (
    GlossDisjointEstimator,
    GlossHighCorrelationEstimator,
    true_usefulness,
)

from _bench_utils import THRESHOLDS, emit

DB = "D1"
SAMPLE = 1500


def test_gloss_simsum_bounds(benchmark, databases, query_log):
    engine, rep = databases[DB]
    queries = query_log[:SAMPLE]
    hc = GlossHighCorrelationEstimator()
    disjoint = GlossDisjointEstimator()

    def simsum_kernel():
        for query in queries[:50]:
            e = hc.estimate(query, rep, 0.2)
            __ = e.nodoc * e.avgsim

    benchmark(simsum_kernel)

    lines = [
        "",
        f"=== gGlOSS sim-sum bounding on {DB} ({len(queries)} queries) ===",
        f"{'T':>4} {'queries':>8} {'bracketed':>10} {'hc is upper':>12} "
        f"{'disjoint is lower':>18}",
    ]
    disjoint_lower_rates = []
    for threshold in THRESHOLDS[:4]:
        total = bracketed = hc_upper = dj_lower = 0
        for query in queries:
            truth = true_usefulness(engine, query, threshold)
            true_sum = truth.nodoc * truth.avgsim
            if true_sum == 0.0:
                continue
            h = hc.estimate(query, rep, threshold)
            d = disjoint.estimate(query, rep, threshold)
            hc_sum = h.nodoc * h.avgsim
            dj_sum = d.nodoc * d.avgsim
            total += 1
            is_upper = true_sum <= hc_sum + 1e-9
            is_lower = dj_sum <= true_sum + 1e-9
            hc_upper += is_upper
            dj_lower += is_lower
            bracketed += is_upper and is_lower
        lines.append(
            f"{threshold:>4.1f} {total:>8} {bracketed / total:>10.1%} "
            f"{hc_upper / total:>12.1%} {dj_lower / total:>18.1%}"
        )
        disjoint_lower_rates.append(dj_lower / total)
    emit("gloss_bounds", "\n".join(lines))

    # The disjoint estimate becomes a near-certain lower bound as the
    # threshold grows ...
    assert disjoint_lower_rates[-1] >= 0.8
    assert disjoint_lower_rates[-1] >= disjoint_lower_rates[0]
    # ... but strict two-sided bracketing is NOT an empirical guarantee —
    # this assertion documents that the idealized theorem fails on real
    # weight distributions (if it ever starts holding universally, the
    # finding in EXPERIMENTS.md needs revisiting).
    assert disjoint_lower_rates[0] < 1.0
