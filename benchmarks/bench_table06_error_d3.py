"""Table 6 — d-N and d-S on D3.  Benchmarks exact truth computation (the
index-backed similarity scan every experiment row depends on)."""

from repro.core import true_usefulness_many
from repro.evaluation import format_error_table

from _bench_utils import THRESHOLDS, print_with_reference

DB = "D3"
TABLE = "table6"


def test_table06_error_d3(benchmark, results, databases, sample_queries):
    engine, __ = databases[DB]

    def truth_all():
        for query in sample_queries:
            true_usefulness_many(engine, query, THRESHOLDS)

    benchmark(truth_all)
    result = results.exact(DB)
    print_with_reference(TABLE, format_error_table(result))
    rows = result.metrics
    total = lambda key, field: sum(getattr(r, field) for r in rows[key])
    assert total("subrange", "d_avgsim") <= total("prev", "d_avgsim")
    assert total("prev", "d_avgsim") <= total("gloss-hc", "d_avgsim")
    assert total("subrange", "d_nodoc") <= total("gloss-hc", "d_nodoc")
