"""Section 3.1 guarantee — optimal engine identification for single-term
queries.

The paper proves that with the max-weight subrange the estimator selects
exactly the engines truly holding above-threshold documents, for every
single-term query and any threshold separating the engines' maximum
normalized weights.  This bench verifies the property at fleet scale (12
engines) over all single-term queries of the log, and additionally reports
selection precision/recall for the full (multi-term included) log at the
paper's mid threshold.
"""

from repro.core import SubrangeEstimator
from repro.engine import SearchEngine
from repro.evaluation import evaluate_selection
from repro.metasearch import MetasearchBroker

from _bench_utils import emit

N_ENGINES = 12
THRESHOLD = 0.3


def test_single_term_guarantee(benchmark, corpus_model, query_log):
    broker = MetasearchBroker(estimator=SubrangeEstimator())
    for group in range(N_ENGINES):
        broker.register(SearchEngine(corpus_model.generate_group(group)))

    single_term = [q for q in query_log if q.is_single_term][:400]
    multi_term = [q for q in query_log if not q.is_single_term][:400]

    def select_all():
        for query in single_term[:50]:
            broker.select(query, THRESHOLD)

    benchmark(select_all)

    exact_single = evaluate_selection(broker, single_term, THRESHOLD)
    exact_multi = evaluate_selection(broker, multi_term, THRESHOLD)
    emit(
        "single_term_guarantee",
        "\n".join(
            [
                "",
                f"=== Section 3.1 guarantee over {N_ENGINES} engines, "
                f"threshold {THRESHOLD} ===",
                f"single-term queries: {exact_single.n_queries}, "
                f"exact selections {exact_single.exact} "
                f"({exact_single.exact_rate:.1%}), recall "
                f"{exact_single.recall:.1%}, precision "
                f"{exact_single.precision:.1%}",
                f"multi-term queries : {exact_multi.n_queries}, "
                f"exact selections {exact_multi.exact} "
                f"({exact_multi.exact_rate:.1%}), recall "
                f"{exact_multi.recall:.1%}, precision "
                f"{exact_multi.precision:.1%}",
            ]
        ),
    )

    # The guarantee: perfect selection on every single-term query.
    assert exact_single.exact_rate == 1.0
    assert exact_single.recall == 1.0
    assert exact_single.precision == 1.0
    # Multi-term selection is estimation-based but must stay strong.
    assert exact_multi.recall >= 0.8
