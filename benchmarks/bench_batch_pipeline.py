"""Batch-pipeline bench — amortization of the batched estimation path.

A broker fleet answers a Zipf query log (shared vocabulary, the paper's
synthetic corpus family) over the full threshold grid two ways:

* **serial** — one ``estimate_all`` call per (query, threshold), the
  pre-batch code path: every pair expands its generating function anew;
* **batch** — one ``estimate_batch`` call over all pairs: queries sharing
  a normalized identity share one expansion per engine, every threshold
  reads off that expansion's single cumulative-sum pass, and the
  term-polynomial cache memoizes per-term factors across the log.

The bench asserts the batch path is at least 2x faster *and* returns
answers exactly equal to the serial path — amortization is free, not a
trade.

A second, *repeated-query* phase re-runs a slice of the workload on both
brokers.  The cold grid never repeats a (query, threshold) pair, so the
estimate cache measures 0% there by construction; the repeat phase is
what actually exercises it, and its per-phase hit rates are printed (and
asserted non-zero) for both paths.

Self-contained (its own scaled-down corpus rather than the session-scoped
paper databases) so it doubles as a quick CI smoke.  Knobs:
``REPRO_BENCH_BATCH_QUERIES`` (default 200), ``REPRO_BENCH_SEED``.
"""

from __future__ import annotations

import os
import time

from repro.corpus.synth import NewsgroupModel, QueryLogModel
from repro.engine import SearchEngine
from repro.metasearch import MetasearchBroker

from _bench_utils import BENCH_SEED, THRESHOLDS, emit

BATCH_QUERIES = int(os.environ.get("REPRO_BENCH_BATCH_QUERIES", "200"))
N_ENGINES = 4


def _fleet_model() -> NewsgroupModel:
    return NewsgroupModel(
        vocab_size=4000,
        topic_size=120,
        topic_band=(50, 1500),
        mean_length=80,
        seed=BENCH_SEED,
        group_sizes=[60, 50, 40, 30],
    )


def _make_broker(engines, cache_size: int = 1024) -> MetasearchBroker:
    broker = MetasearchBroker(cache_size=cache_size)
    for engine in engines:
        broker.register(engine)
    return broker


def test_batch_pipeline_speedup(benchmark):
    model = _fleet_model()
    engines = [
        SearchEngine(model.generate_group(group)) for group in range(N_ENGINES)
    ]
    queries = QueryLogModel(model, seed=42).generate(BATCH_QUERIES)
    # The full (query, threshold) grid, flattened in query-major order.
    pairs = [(q, t) for q in queries for t in THRESHOLDS]
    flat_queries = [q for q, __ in pairs]
    flat_thresholds = [t for __, t in pairs]

    # Size the estimate cache to the whole grid: the repeat phase below
    # measures cache behavior, and an undersized LRU would silently evict
    # the very entries the repeat is about to re-ask for.
    grid_entries = len(pairs) * N_ENGINES
    serial_broker = _make_broker(engines, cache_size=grid_entries)
    start = time.perf_counter()
    serial_rows = [
        serial_broker.estimate_all(query, threshold)
        for query, threshold in pairs
    ]
    serial_seconds = time.perf_counter() - start

    batch_broker = _make_broker(engines, cache_size=grid_entries)
    start = time.perf_counter()
    batch_rows = batch_broker.estimate_batch(flat_queries, flat_thresholds)
    batch_seconds = time.perf_counter() - start

    assert batch_rows == serial_rows, "batch pipeline drifted from serial"
    speedup = serial_seconds / batch_seconds if batch_seconds > 0 else float("inf")

    # Repeated-query phase: the cold grid above never repeats a (query,
    # threshold) pair, so the estimate cache cannot hit there.  Re-running
    # a slice of the workload is what a real log does — measure the cache
    # on that phase alone.
    repeat_pairs = pairs[: max(1, len(pairs) // 4)]
    phases = {}
    for label, broker, run in (
        (
            "serial",
            serial_broker,
            lambda: [
                serial_broker.estimate_all(query, threshold)
                for query, threshold in repeat_pairs
            ],
        ),
        (
            "batch",
            batch_broker,
            lambda: batch_broker.estimate_batch(
                [q for q, __ in repeat_pairs], [t for __, t in repeat_pairs]
            ),
        ),
    ):
        hits0, misses0 = broker.cache.hits, broker.cache.misses
        repeated_rows = run()
        hits = broker.cache.hits - hits0
        lookups = hits + broker.cache.misses - misses0
        assert list(repeated_rows) == serial_rows[: len(repeat_pairs)], (
            f"{label} repeat phase drifted from the cold answers"
        )
        phases[label] = (hits, lookups)

    polycache = batch_broker.polycache
    lines = [
        "",
        f"=== batch estimation pipeline on {N_ENGINES} engines, "
        f"{len(queries)} Zipf queries x {len(THRESHOLDS)} thresholds ===",
        f"{'path':<8} {'seconds':>9} {'ms/pair':>9}",
        f"{'serial':<8} {serial_seconds:>9.2f} "
        f"{1000.0 * serial_seconds / len(pairs):>9.2f}",
        f"{'batch':<8} {batch_seconds:>9.2f} "
        f"{1000.0 * batch_seconds / len(pairs):>9.2f}",
        f"speedup  : {speedup:.2f}x (batch over serial)",
        f"equality : exact ({len(pairs)} estimate rows compared)",
        f"polycache: {polycache.hits + polycache.misses} lookups, "
        f"{polycache.hit_rate:.1%} hit rate, {len(polycache)} resident",
        f"est cache (cold grid): {batch_broker.cache.hit_rate:.1%} "
        f"cumulative hit rate, {len(batch_broker.cache)} resident",
    ]
    for label in ("serial", "batch"):
        hits, lookups = phases[label]
        rate = hits / lookups if lookups else 0.0
        lines.append(
            f"est cache (repeat, {label}): {rate:.1%} hit rate "
            f"({hits}/{lookups} lookups, {len(repeat_pairs)} pairs)"
        )
    emit("batch_pipeline", "\n".join(lines))

    for label in ("serial", "batch"):
        hits, lookups = phases[label]
        assert lookups > 0 and hits > 0, (
            f"repeated-query phase never hit the estimate cache on the "
            f"{label} path ({hits}/{lookups}) — the measurement is dead again"
        )

    assert speedup >= 2.0, (
        f"batched estimation only {speedup:.2f}x faster than serial "
        f"(expected >= 2x on the shared-vocabulary workload)"
    )

    # Time the warm batch path (both caches populated) as the benchmark
    # kernel — the steady-state cost of re-running a seen workload.
    benchmark(
        lambda: batch_broker.estimate_batch(flat_queries, flat_thresholds)
    )
