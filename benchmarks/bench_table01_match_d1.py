"""Table 1 — match/mismatch on D1: high-correlation vs previous vs subrange.

Regenerates the table on the synthetic D1 (761 documents) with the full
query log, prints it next to the paper's published values, and benchmarks
the end-to-end evaluation kernel (truth + all three estimators) over a
fixed query sample.
"""

from repro.core import (
    GlossHighCorrelationEstimator,
    PreviousMethodEstimator,
    SubrangeEstimator,
)
from repro.evaluation import MethodSpec, format_match_table, run_usefulness_experiment

from _bench_utils import THRESHOLDS, print_with_reference

DB = "D1"
TABLE = "table1"


def test_table01_match_d1(benchmark, results, databases, sample_queries):
    engine, rep = databases[DB]
    methods = [
        MethodSpec("gloss-hc", GlossHighCorrelationEstimator(), rep),
        MethodSpec("prev", PreviousMethodEstimator(), rep),
        MethodSpec("subrange", SubrangeEstimator(), rep),
    ]
    benchmark(
        run_usefulness_experiment, engine, sample_queries, methods, THRESHOLDS
    )
    result = results.exact(DB)
    print_with_reference(TABLE, format_match_table(result))
    # Shape assertions mirroring the paper's conclusion for this table.
    rows = result.metrics
    for i in range(len(THRESHOLDS)):
        assert rows["subrange"][i].match >= rows["prev"][i].match
        assert rows["prev"][i].match >= rows["gloss-hc"][i].match
