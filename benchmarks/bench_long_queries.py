"""Scaling bench — expansion growth and latency vs query length.

The paper evaluates on queries of <= 6 terms; the generating-function
product grows multiplicatively with query length, so a practical system
must know where the cliff is.  This bench sweeps query lengths 1..12 with
the six-subrange method on D2, recording expansion size and per-query
latency with and without the expansion controls (exponent rounding + prune
floor), and asserts the controls keep long queries tractable.
"""

import time

import numpy as np

from repro.core import SubrangeEstimator
from repro.corpus.synth import QueryLogModel

from _bench_utils import THRESHOLDS, emit

DB = "D2"
LENGTHS = (1, 2, 4, 6, 8, 10, 12)
PER_LENGTH = 25


def test_long_query_scaling(benchmark, corpus_model, databases):
    __, rep = databases[DB]
    loose = SubrangeEstimator(decimals=10)
    controlled = SubrangeEstimator(decimals=4, prune_floor=1e-10)

    queries_by_length = {}
    for length in LENGTHS:
        probs = [0.0] * length
        probs[-1] = 1.0
        log = QueryLogModel(corpus_model, length_probs=probs, seed=13)
        queries_by_length[length] = log.generate(PER_LENGTH)

    def controlled_longest():
        for query in queries_by_length[LENGTHS[-1]][:10]:
            controlled.estimate_many(query, rep, THRESHOLDS)

    benchmark(controlled_longest)

    lines = [
        "",
        f"=== expansion scaling vs query length on {DB} "
        f"({PER_LENGTH} queries per length) ===",
        f"{'len':>4} {'terms(loose)':>13} {'terms(ctrl)':>12} "
        f"{'ms/query(ctrl)':>15}",
    ]
    controlled_sizes = {}
    for length in LENGTHS:
        controlled_terms = []
        start = time.perf_counter()
        for query in queries_by_length[length]:
            controlled_terms.append(controlled.expand(query, rep).n_terms)
        elapsed_ms = (time.perf_counter() - start) * 1000 / PER_LENGTH
        # The uncontrolled product grows ~6^len terms; past 6 terms it is
        # too large to even materialize — which is the point of the bench.
        if length <= 6:
            loose_terms = [
                loose.expand(query, rep).n_terms
                for query in queries_by_length[length][:8]
            ]
            loose_cell = f"{np.mean(loose_terms):>13.0f}"
        else:
            loose_cell = f"{'intractable':>13}"
        controlled_sizes[length] = float(np.mean(controlled_terms))
        lines.append(
            f"{length:>4} {loose_cell} "
            f"{controlled_sizes[length]:>12.0f} {elapsed_ms:>15.2f}"
        )
    emit("long_queries", "\n".join(lines))

    # With the controls, expansion size grows far slower than the naive
    # multiplicative bound (6 subranges ** length).
    assert controlled_sizes[12] < 6**6
    # And long queries stay sub-linear relative to uncontrolled blowup:
    # controlled 12-term expansions are within ~100x of 4-term ones rather
    # than the ~6^8 the raw product would suggest.
    assert controlled_sizes[12] <= 150 * max(controlled_sizes[4], 1.0)
