"""Table 8 — one-byte representative on D2.  Benchmarks subrange estimation
against the quantized representative (same estimator code path as exact)."""

from repro.core import SubrangeEstimator
from repro.evaluation import format_combined_table
from repro.representatives import quantize_representative

from _bench_utils import THRESHOLDS, print_with_reference

DB = "D2"
TABLE = "table8"


def test_table08_quantized_d2(benchmark, results, databases, sample_queries):
    __, rep = databases[DB]
    quantized_rep = quantize_representative(rep)
    estimator = SubrangeEstimator()

    def estimate_all():
        for query in sample_queries:
            estimator.estimate_many(query, quantized_rep, THRESHOLDS)

    benchmark(estimate_all)
    result = results.quantized(DB)
    print_with_reference(TABLE, format_combined_table(result, "subrange"))
    exact = results.exact(DB).metrics["subrange"]
    quantized = result.metrics["subrange"]
    for e_row, q_row in zip(exact, quantized):
        assert abs(e_row.match - q_row.match) <= max(5, 0.03 * e_row.match)
