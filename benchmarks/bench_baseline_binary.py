"""Related-work bench — the 1978 binary-independence baseline.

The paper dismisses binary-vector estimation because "a substantial amount
of information will be lost."  This bench measures the loss on D1: the
binary-independence estimator (occurrence probabilities only, one global
weight constant) against the basic and subrange methods.
"""

from repro.core import (
    BasicEstimator,
    BinaryIndependenceEstimator,
    SubrangeEstimator,
)
from repro.evaluation import MethodSpec, run_usefulness_experiment

from _bench_utils import THRESHOLDS, emit

DB = "D1"
SAMPLE = 1200


def test_binary_baseline(benchmark, databases, query_log):
    engine, rep = databases[DB]
    queries = query_log[:SAMPLE]
    methods = [
        MethodSpec("binary", BinaryIndependenceEstimator(), rep,
                   label="binary independent (1978)"),
        MethodSpec("basic", BasicEstimator(), rep,
                   label="basic (per-term mean)"),
        MethodSpec("subrange", SubrangeEstimator(), rep,
                   label="subrange (paper)"),
    ]
    result = benchmark.pedantic(
        run_usefulness_experiment,
        args=(engine, queries, methods, THRESHOLDS),
        rounds=1,
        iterations=1,
    )
    lines = [
        "",
        f"=== information loss of binary vectors on {DB} "
        f"({len(queries)} queries) ===",
        f"{'method':>28} {'match':>6} {'mismatch':>9} "
        f"{'sum d-N':>8} {'sum d-S':>8}",
    ]
    summaries = {}
    for spec in methods:
        rows = result.metrics[spec.key]
        summary = (
            sum(r.match for r in rows),
            sum(r.mismatch for r in rows),
            sum(r.d_nodoc for r in rows),
            sum(r.d_avgsim for r in rows),
        )
        summaries[spec.key] = summary
        lines.append(f"{spec.label:>28} {summary[0]:>6} {summary[1]:>9} "
                     f"{summary[2]:>8.2f} {summary[3]:>8.3f}")
    emit("baseline_binary", "\n".join(lines))

    # Per-term means already beat the single global constant; subranges
    # beat both — each step recovers information binary vectors lost.
    assert summaries["subrange"][3] < summaries["basic"][3]
    assert summaries["basic"][3] < summaries["binary"][3]
    assert summaries["subrange"][2] <= summaries["binary"][2]