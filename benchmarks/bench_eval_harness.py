"""Golden-set harness bench — cost and quality shape of `repro eval`.

Times one full harness pass (five estimators, five committed strata,
columnar brokers) and emits the per-stratum subrange row next to the
weakest baseline.  Asserts the paper's qualitative conclusion holds on
the golden sets: the subrange estimator dominates the basic estimator
on selection F1 on every stratum with a non-trivial oracle, and is the
only estimator expected to stay tripwire-clean on the single-term
stratum (the Section 3.1 guarantee regime).
"""

import time
from pathlib import Path

from repro.core import get_estimator
from repro.engine import SearchEngine
from repro.evaluation.harness import (
    build_eval_fleet,
    golden_manifest,
    load_golden_strata,
    run_evaluation,
)
from repro.metasearch import MetasearchBroker
from repro.representatives import build_representative

from _bench_utils import emit

GOLDEN_DIR = Path(__file__).parent.parent / "tests/integration/golden/queries"

ESTIMATORS = [
    "basic",
    "binary-independence",
    "gloss-hc",
    "gloss-disjoint",
    "subrange",
]


def test_eval_harness_full_pass():
    manifest = golden_manifest(GOLDEN_DIR)
    strata = load_golden_strata(GOLDEN_DIR)
    collections = build_eval_fleet(
        int(manifest["seed"]), int(manifest["n_engines"])
    )
    engines = [SearchEngine(c) for c in collections]
    representatives = {e.name: build_representative(e) for e in engines}

    backends = {}
    for name in ESTIMATORS:
        broker = MetasearchBroker(estimator=get_estimator(name), columnar=True)
        for engine in engines:
            broker.register(engine, representative=representatives[engine.name])
        backends[name] = broker

    start = time.perf_counter()
    result = run_evaluation(
        backends, engines, strata, config="bench", seed=int(manifest["seed"])
    )
    elapsed = time.perf_counter() - start

    n_queries = sum(s.n_queries for s in strata.values())
    lines = [
        "",
        f"=== eval harness: {len(ESTIMATORS)} estimators x "
        f"{len(strata)} strata ({n_queries} queries) in {elapsed:.2f}s ===",
        f"{'stratum':<20} {'useful':>6}  "
        f"{'basic f1':>9} {'subrange f1':>11} {'subrange tau':>12}",
    ]
    for name in sorted(result.payload["strata"]):
        stratum = result.payload["strata"][name]
        basic = stratum["estimators"]["basic"]
        subrange = stratum["estimators"]["subrange"]
        lines.append(
            f"{name:<20} {stratum['oracle']['useful_queries']:>6}  "
            f"{basic['f1']:>9.3f} {subrange['f1']:>11.3f} "
            f"{subrange['kendall_tau']:>12.3f}"
        )
        # The paper's method ordering, restated on the golden sets: the
        # subrange estimator never loses to the basic estimator on
        # selection F1 where there is anything to select.  (On the
        # empty-oracle stratum a do-nothing selector scores a vacuous
        # 1.0, so dominance is not claimed there.)
        if stratum["oracle"]["useful_queries"] > 0:
            assert subrange["f1"] >= basic["f1"] - 1e-9, name
    single = result.payload["strata"]["single_term"]["estimators"]["subrange"]
    assert single["tripwires"]["ok"], single["tripwires"]
    assert single["recall"] == 1.0, single  # the Section 3.1 guarantee
    emit("BENCH_eval_harness", "\n".join(lines))
