"""Full-environment bench — all 53 newsgroup engines, as in the paper.

The paper's data is 53 newsgroup snapshots; its tables evaluate three
merged databases, but the system the introduction motivates is the full
fleet.  This bench registers all 53 synthetic engines with a broker and
measures, across the threshold grid: selection recall/precision against
the exhaustive oracle, and the fraction of engine invocations (and thereby
network/processing cost) the usefulness estimates save versus broadcasting.
"""

import time

from repro.engine import SearchEngine
from repro.evaluation import evaluate_selection
from repro.metasearch import MetasearchBroker
from repro.representatives import build_representative

from _bench_utils import emit

SAMPLE = 400
GRID = (0.2, 0.3, 0.4)

#: Engines and simulated per-call network latency for the dispatch benches.
DISPATCH_FLEET = 16
DISPATCH_DELAY = 0.02


class _LatencyEngine:
    """Wrapper simulating network round-trip time on ``search`` — the cost
    profile the concurrent dispatcher exists to hide."""

    def __init__(self, inner, delay):
        self.inner = inner
        self.delay = delay

    def __getattr__(self, attr):
        return getattr(self.inner, attr)

    def search(self, query, threshold=0.0):
        time.sleep(self.delay)
        return self.inner.search(query, threshold)


def _latency_broker(engines, representatives, delay, **kwargs):
    broker = MetasearchBroker(cache_size=0, **kwargs)
    for engine, representative in zip(engines, representatives):
        broker.register(
            _LatencyEngine(engine, delay), representative=representative
        )
    return broker


def test_full_fleet_selection(benchmark, corpus_model, query_log):
    broker = MetasearchBroker()
    for group in range(corpus_model.n_groups):
        broker.register(SearchEngine(corpus_model.generate_group(group)))
    queries = query_log[:SAMPLE]

    def select_sample():
        for query in queries[:25]:
            broker.select(query, 0.3)

    benchmark(select_sample)

    lines = [
        "",
        f"=== full fleet: {len(broker)} engines, {len(queries)} queries ===",
        f"{'T':>4} {'exact':>7} {'recall':>8} {'precision':>10} "
        f"{'invoked/bcast':>14}",
    ]
    recalls = []
    for threshold in GRID:
        quality = evaluate_selection(broker, queries, threshold)
        invoked = sum(
            len(broker.select(query, threshold)) for query in queries
        )
        share = invoked / (len(broker) * len(queries))
        recalls.append(quality.recall)
        lines.append(
            f"{threshold:>4.1f} {quality.exact_rate:>7.1%} "
            f"{quality.recall:>8.1%} {quality.precision:>10.1%} "
            f"{share:>14.1%}"
        )
    emit("full_fleet", "\n".join(lines))

    # At fleet scale the estimates must keep selection sharp: high recall
    # of truly useful engines while invoking a small fraction of the fleet.
    assert min(recalls) >= 0.85
    final_share = invoked / (len(broker) * len(queries))
    assert final_share <= 0.5


def test_full_fleet_concurrent_speedup(benchmark, corpus_model, query_log):
    """workers=8 over 16 latency-bound engines beats the serial path."""
    engines = [
        SearchEngine(corpus_model.generate_group(g)) for g in range(DISPATCH_FLEET)
    ]
    representatives = [build_representative(e) for e in engines]
    serial = _latency_broker(engines, representatives, DISPATCH_DELAY, workers=1)
    concurrent = _latency_broker(engines, representatives, DISPATCH_DELAY, workers=8)
    queries = query_log[:5]

    def broadcast(broker):
        for query in queries:
            broker.search_all(query, 0.3)

    start = time.perf_counter()
    broadcast(serial)
    t_serial = time.perf_counter() - start
    start = time.perf_counter()
    broadcast(concurrent)
    t_concurrent = time.perf_counter() - start
    benchmark.pedantic(broadcast, args=(concurrent,), rounds=2, iterations=1)

    emit(
        "fleet_dispatch",
        "\n".join(
            [
                "",
                f"=== concurrent dispatch: {DISPATCH_FLEET} engines, "
                f"{DISPATCH_DELAY * 1000:.0f}ms simulated RTT, "
                f"{len(queries)} broadcast queries ===",
                f"serial (workers=1) : {t_serial:.2f}s",
                f"workers=8          : {t_concurrent:.2f}s",
                f"speedup            : {t_serial / t_concurrent:.1f}x",
            ]
        ),
    )
    # 8 workers over 16 latency-bound engines must at least halve wall clock.
    assert t_concurrent < t_serial / 2.0


def test_full_fleet_survives_hung_engine(benchmark, corpus_model, query_log):
    """One hung engine: merged results still arrive within the deadline."""
    timeout = 0.5
    engines = [
        SearchEngine(corpus_model.generate_group(g)) for g in range(DISPATCH_FLEET)
    ]
    representatives = [build_representative(e) for e in engines]
    broker = MetasearchBroker(workers=8, timeout=timeout, cache_size=0)
    hung = _LatencyEngine(engines[0], delay=4.0)  # far past the deadline
    broker.register(hung, representative=representatives[0])
    for engine, representative in zip(engines[1:], representatives[1:]):
        broker.register(engine, representative=representative)
    query = query_log[0]

    start = time.perf_counter()
    response = broker.search_all(query, 0.05)
    elapsed = time.perf_counter() - start
    benchmark.pedantic(
        broker.search_all, args=(query, 0.05), rounds=2, iterations=1
    )

    healthy = {h.engine for h in response.hits}
    emit(
        "fleet_degradation",
        "\n".join(
            [
                "",
                f"=== hung-engine degradation: 1/{DISPATCH_FLEET} engines hung, "
                f"timeout {timeout}s ===",
                f"response time      : {elapsed:.2f}s",
                f"merged hits        : {len(response.hits)} "
                f"from {len(healthy)} engines",
                f"failures           : "
                + "; ".join(str(f) for f in response.failures),
            ]
        ),
    )
    assert elapsed < timeout + 0.4  # deadline held despite the hang
    assert [f.engine for f in response.failures] == [engines[0].name]
    assert response.failures[0].kind == "timeout"
    assert response.hits  # healthy engines still answered
    assert engines[0].name not in healthy
