"""Full-environment bench — all 53 newsgroup engines, as in the paper.

The paper's data is 53 newsgroup snapshots; its tables evaluate three
merged databases, but the system the introduction motivates is the full
fleet.  This bench registers all 53 synthetic engines with a broker and
measures, across the threshold grid: selection recall/precision against
the exhaustive oracle, and the fraction of engine invocations (and thereby
network/processing cost) the usefulness estimates save versus broadcasting.
"""

from repro.engine import SearchEngine
from repro.evaluation import evaluate_selection
from repro.metasearch import MetasearchBroker

from _bench_utils import emit

SAMPLE = 400
GRID = (0.2, 0.3, 0.4)


def test_full_fleet_selection(benchmark, corpus_model, query_log):
    broker = MetasearchBroker()
    for group in range(corpus_model.n_groups):
        broker.register(SearchEngine(corpus_model.generate_group(group)))
    queries = query_log[:SAMPLE]

    def select_sample():
        for query in queries[:25]:
            broker.select(query, 0.3)

    benchmark(select_sample)

    lines = [
        "",
        f"=== full fleet: {len(broker)} engines, {len(queries)} queries ===",
        f"{'T':>4} {'exact':>7} {'recall':>8} {'precision':>10} "
        f"{'invoked/bcast':>14}",
    ]
    recalls = []
    for threshold in GRID:
        quality = evaluate_selection(broker, queries, threshold)
        invoked = sum(
            len(broker.select(query, threshold)) for query in queries
        )
        share = invoked / (len(broker) * len(queries))
        recalls.append(quality.recall)
        lines.append(
            f"{threshold:>4.1f} {quality.exact_rate:>7.1%} "
            f"{quality.recall:>8.1%} {quality.precision:>10.1%} "
            f"{share:>14.1%}"
        )
    emit("full_fleet", "\n".join(lines))

    # At fleet scale the estimates must keep selection sharp: high recall
    # of truly useful engines while invoking a small fraction of the fleet.
    assert min(recalls) >= 0.85
    final_share = invoked / (len(broker) * len(queries))
    assert final_share <= 0.5
