"""Table 10 — subrange method on D1 with the maximum normalized weight
*estimated* (99.9 percentile of the normal approximation) rather than
stored.  The paper's point: accuracy degrades, demonstrating the value of
the stored max weight.  (The published Table 10 is damaged in our source
scan, so only the reproduction is printed; Tables 11-12 carry the published
reference for the same condition.)

Benchmarks the triplet-mode estimation kernel.
"""

from repro.core import SubrangeEstimator
from repro.evaluation import format_combined_table

from _bench_utils import THRESHOLDS, print_with_reference

DB = "D1"
TABLE = "table10"


def test_table10_triplet_d1(benchmark, results, databases, sample_queries):
    __, rep = databases[DB]
    triplet_rep = rep.as_triplets()
    estimator = SubrangeEstimator(use_stored_max=False)

    def estimate_all():
        for query in sample_queries:
            estimator.estimate_many(query, triplet_rep, THRESHOLDS)

    benchmark(estimate_all)
    result = results.triplet(DB)
    print_with_reference(TABLE, format_combined_table(result, "subrange"))
    # Degradation shape: on near-normal synthetic weights the missing max
    # weight shows up as spurious matches (mismatch) and larger AvgSim
    # error rather than lost matches; either direction is a loss.
    exact = results.exact(DB).metrics["subrange"]
    triplet = result.metrics["subrange"]
    assert sum(r.mismatch for r in triplet) > sum(r.mismatch for r in exact)
    assert sum(r.d_avgsim for r in triplet) > sum(r.d_avgsim for r in exact)
