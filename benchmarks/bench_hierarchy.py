"""Extension bench — the "more than two levels" generalization.

Builds a three-level hierarchy over 16 synthetic newsgroup engines (root ->
4 regional brokers -> 4 engines each), routes a query log through it, and
measures (a) correctness — the hierarchy finds the same documents as a flat
broker — and (b) the work saved by pruning whole subtrees with one
estimate.  Also re-verifies the single-term guarantee across levels, which
holds because inner representatives are exact merges.
"""

from repro.engine import SearchEngine
from repro.metasearch import BrokerNode

from _bench_utils import emit

N_ENGINES = 16
FANOUT = 4
THRESHOLD = 0.3
SAMPLE = 300


def test_hierarchy_pruning(benchmark, corpus_model, query_log):
    leaves = [
        BrokerNode.leaf(SearchEngine(corpus_model.generate_group(g)))
        for g in range(N_ENGINES)
    ]
    regions = [
        BrokerNode.inner(f"region{r}", leaves[r * FANOUT: (r + 1) * FANOUT])
        for r in range(N_ENGINES // FANOUT)
    ]
    root = BrokerNode.inner("root", regions)
    queries = query_log[:SAMPLE]

    def run_sample():
        for query in queries[:40]:
            root.search(query, THRESHOLD)

    benchmark(run_sample)

    from repro.core import SubrangeEstimator

    estimator = SubrangeEstimator()
    total_visits = 0
    total_flat_estimates = 0
    guarantee_violations = 0
    subset_violations = 0
    docs_found = 0
    docs_available = 0
    for query in queries:
        report = root.search(query, THRESHOLD)
        total_visits += len(report.visited_nodes)
        total_flat_estimates += N_ENGINES  # a flat broker estimates all
        broadcast_ids = set()
        flat_selected = set()
        for leaf in leaves:
            broadcast_ids.update(
                h.doc_id for h in leaf.engine.search(query, THRESHOLD)
            )
            if estimator.estimate(
                query, leaf.representative, THRESHOLD
            ).identifies_useful:
                flat_selected.add(leaf.name)
        tree_ids = {h.doc_id for h in report.hits}
        docs_found += len(tree_ids)
        docs_available += len(broadcast_ids)
        # A hierarchy can only ever invoke engines a flat selective broker
        # would also invoke (leaf estimates gate both).
        if not set(report.invoked_engines) <= flat_selected:
            subset_violations += 1
        if query.is_single_term:
            truth = set(root.true_engines(query, THRESHOLD))
            if set(report.invoked_engines) != truth:
                guarantee_violations += 1

    doc_recall = docs_found / docs_available if docs_available else 1.0
    emit(
        "hierarchy",
        "\n".join(
            [
                "",
                f"=== 3-level hierarchy over {N_ENGINES} engines "
                f"({len(queries)} queries, threshold {THRESHOLD}) ===",
                f"estimates computed (hierarchy) : {total_visits}",
                f"estimates computed (flat)      : {total_flat_estimates}",
                f"estimate reduction             : "
                f"{1 - total_visits / total_flat_estimates:.1%}",
                f"document recall vs broadcast   : {doc_recall:.1%}",
                f"single-term guarantee breaches : {guarantee_violations}",
            ]
        ),
    )

    # The single-term guarantee composes across levels exactly.
    assert guarantee_violations == 0
    # Hierarchical invocation is always a subset of flat selection.
    assert subset_violations == 0
    # Multi-term selection is estimation-based at every level, so a few
    # documents are traded for the pruning; recall must stay high.
    assert doc_recall >= 0.9
    # And pruning must save real work against the flat broker.
    assert total_visits < 0.9 * total_flat_estimates
