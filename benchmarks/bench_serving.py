"""Serving bench — gateway-over-HTTP versus the in-process broker.

A fleet of four engine-server *processes* (launched through ``repro serve
engine``, exactly as an operator would) sits behind an HTTP gateway.  A
closed-loop load generator drives Zipf queries through the gateway from
several concurrent workers, then replays the identical workload against an
in-process :class:`MetasearchBroker` over the same collections.

The bench asserts the wire adds **zero** answer drift — merged hits,
estimates, invoked engines and failures are all exactly equal — and
reports what it costs: throughput, latency percentiles, and the per-request
overhead over the in-process path.

The sharded bench pits the 4-shard scatter-gather coordinator (spawned
end-to-end through ``repro serve coordinator --shards 4``: four shard
worker processes plus the asyncio frontend) against the PR 4
single-broker gateway over the same collections, driven by a
*multi-process* closed-loop load generator (each worker is its own
Python process with its own keep-alive connection, barrier-released so
interpreter startup never lands inside the timed window).  Exactness vs
the in-process columnar broker is asserted outside the timed section;
the machine-readable outcome lands in ``BENCH_sharded_serving.json``
(override: ``REPRO_BENCH_SHARDED_JSON``).  The >=2x throughput floor is
armed only on machines with >=4 usable CPUs (a 1-CPU container cannot
express process-level parallelism; ``cpus`` and ``floor_armed`` are
recorded either way) — force it with ``REPRO_BENCH_SHARDED_FLOOR=1``/
``0``.

The coalescing bench isolates what the front-door micro-batcher buys:
an in-process :class:`CoordinatorApp` over four live shard-worker
servers, driven closed-loop at concurrency 1 / 4 / 16 with coalescing on
versus off.  Shard estimate caches are warmed (and on==off exactness
asserted byte-for-byte) before timing, so per-request scatter RPCs —
the cost coalescing collapses — dominate the measured window.  The
coordinator's scatter counters must prove one ``/estimate`` RPC per
shard per flushed window, the idle fast-path must add <1 ms p50 at
concurrency 1, and at concurrency 16 the coalesced lane must clear the
2x throughput floor (armed like the sharded floor; force with
``REPRO_BENCH_COALESCE_FLOOR=1``/``0``).  Occupancy and flush-reason
distributions land in ``BENCH_sharded_serving.json`` (merged, not
overwritten) and the human-readable breakdown — including why the
sharded-vs-single lane regresses on 1 CPU — in
``results/sharded_serving.txt``.

Knobs: ``REPRO_BENCH_SERVING_QUERIES`` (default 60), ``REPRO_BENCH_SEED``,
``REPRO_BENCH_SHARDED_QUERIES`` (default 40),
``REPRO_BENCH_SHARDED_ROUNDS`` (default 3),
``REPRO_BENCH_SHARDED_WORKERS`` (default 8 load-generator processes),
``REPRO_BENCH_COALESCE_QUERIES`` (default 48),
``REPRO_BENCH_COALESCE_ROUNDS`` (default 2).
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.corpus import Query, save_collection
from repro.corpus.synth import NewsgroupModel, QueryLogModel
from repro.engine import SearchEngine
from repro.metasearch import MetasearchBroker
from repro.obs import MetricsRegistry
from repro.representatives import build_representative, partition_round_robin
from repro.serving import (
    CoordinatorApp,
    GatewayApp,
    GatewayClient,
    RemoteEngine,
    ServingServer,
    ShardApp,
    ShardedFleet,
)
from repro.serving.wire import query_to_wire

from _bench_utils import BENCH_SEED, THRESHOLDS, emit

SERVING_QUERIES = int(os.environ.get("REPRO_BENCH_SERVING_QUERIES", "60"))
N_ENGINES = 4
WORKERS = 4

SHARDED_QUERIES = int(os.environ.get("REPRO_BENCH_SHARDED_QUERIES", "40"))
SHARDED_ROUNDS = int(os.environ.get("REPRO_BENCH_SHARDED_ROUNDS", "3"))
SHARDED_WORKERS = int(os.environ.get("REPRO_BENCH_SHARDED_WORKERS", "8"))
SHARDED_JSON = Path(
    os.environ.get("REPRO_BENCH_SHARDED_JSON", "BENCH_sharded_serving.json")
)
SHARDED_TXT = Path(
    os.environ.get("REPRO_BENCH_SHARDED_TXT", "results/sharded_serving.txt")
)
N_SHARDS = 4

COALESCE_QUERIES = int(os.environ.get("REPRO_BENCH_COALESCE_QUERIES", "48"))
COALESCE_ROUNDS = int(os.environ.get("REPRO_BENCH_COALESCE_ROUNDS", "2"))
COALESCE_WINDOW = 0.005  # seconds; the idle fast-path makes it free at c=1
COALESCE_MAX_BATCH = 64
COALESCE_CONCURRENCY = (1, 4, 16)


def _fleet_model() -> NewsgroupModel:
    return NewsgroupModel(
        vocab_size=2000,
        topic_size=100,
        topic_band=(50, 800),
        mean_length=60,
        seed=BENCH_SEED,
        group_sizes=[40, 30, 25, 20],
    )


def _launch_fleet(collections, tmp):
    """Start one ``repro serve engine`` process per collection."""
    processes, urls = [], []
    for collection in collections:
        path = tmp / f"{collection.name}.jsonl.gz"
        save_collection(collection, path)
        processes.append(
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "serve",
                    "engine",
                    "--collection",
                    str(path),
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
        )
    for proc in processes:
        url = None
        deadline = time.time() + 30
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            match = re.search(r"serving engine at (http://\S+)", line)
            if match:
                url = match.group(1)
                break
        assert url, "engine server did not announce its URL"
        urls.append(url)
    return processes, urls


def _stop_fleet(processes):
    for proc in processes:
        proc.send_signal(signal.SIGTERM)
    for proc in processes:
        try:
            proc.communicate(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.communicate()


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _closed_loop(client, requests):
    """Drive ``requests`` through ``client`` from WORKERS threads.

    Returns (responses, latencies) in request order, plus the wall time.
    """
    responses = [None] * len(requests)
    latencies = [0.0] * len(requests)
    cursor = iter(range(len(requests)))
    lock = threading.Lock()

    def worker():
        while True:
            with lock:
                index = next(cursor, None)
            if index is None:
                return
            query, threshold = requests[index]
            start = time.perf_counter()
            responses[index] = client.search(query, threshold)
            latencies[index] = time.perf_counter() - start

    threads = [threading.Thread(target=worker) for __ in range(WORKERS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return responses, latencies, time.perf_counter() - start


def test_serving_gateway_exactness_and_overhead(benchmark, tmp_path):
    model = _fleet_model()
    collections = [model.generate_group(group) for group in range(N_ENGINES)]
    queries = QueryLogModel(model, seed=42).generate(SERVING_QUERIES)
    requests = [
        (query, THRESHOLDS[i % len(THRESHOLDS)])
        for i, query in enumerate(queries)
    ]

    processes, server = [], None
    try:
        processes, urls = _launch_fleet(collections, tmp_path)
        broker = MetasearchBroker(workers=N_ENGINES)
        for url in urls:
            remote = RemoteEngine(url)
            snapshot = remote.snapshot_representative()
            broker.register(remote, representative=snapshot.representative)
        server = ServingServer(
            GatewayApp(broker, max_active=WORKERS * 2, max_queued=64)
        )
        server.start_background()
        client = GatewayClient(server.url)

        # Warm the keep-alive connections before measuring.
        client.search(requests[0][0], requests[0][1])

        responses, latencies, wall = _closed_loop(client, requests)

        local_broker = MetasearchBroker()
        for collection in collections:
            local_broker.register(SearchEngine(collection))
        start = time.perf_counter()
        local = [
            local_broker.search(query, threshold)
            for query, threshold in requests
        ]
        local_seconds = time.perf_counter() - start

        for remote_response, local_response in zip(responses, local):
            assert remote_response.hits == local_response.hits
            assert remote_response.estimates == local_response.estimates
            assert remote_response.invoked == local_response.invoked
            assert remote_response.failures == local_response.failures

        ordered = sorted(latencies)
        throughput = len(requests) / wall if wall > 0 else float("inf")
        lines = [
            "",
            f"=== serving gateway over {N_ENGINES} engine-server processes, "
            f"{len(requests)} Zipf queries, {WORKERS} closed-loop workers ===",
            f"{'path':<11} {'seconds':>9} {'ms/req':>9}",
            f"{'gateway':<11} {wall:>9.2f} "
            f"{1000.0 * wall / len(requests):>9.2f}",
            f"{'in-process':<11} {local_seconds:>9.2f} "
            f"{1000.0 * local_seconds / len(requests):>9.2f}",
            f"throughput : {throughput:.1f} req/s through the gateway",
            f"latency    : p50 {1000.0 * _percentile(ordered, 0.50):.2f} ms, "
            f"p90 {1000.0 * _percentile(ordered, 0.90):.2f} ms, "
            f"p99 {1000.0 * _percentile(ordered, 0.99):.2f} ms",
            f"equality   : exact ({len(requests)} responses compared: "
            f"hits, estimates, invoked, failures)",
        ]
        emit("serving", "\n".join(lines))

        # Steady-state kernel: one warm request through the full stack
        # (gateway admission -> concurrent dispatch -> 4 HTTP engines).
        query, threshold = requests[0]
        benchmark(lambda: client.search(query, threshold))

        client.close()
    finally:
        if server is not None:
            server.drain(timeout=10)
        _stop_fleet(processes)


# -- sharded topology vs single-broker gateway ------------------------------

_LOADGEN_SOURCE = '''
"""Closed-loop load-generator worker: one process, one connection."""
import json
import sys
import time

from repro.corpus import Query
from repro.serving import GatewayClient

url, requests_path, index, n_workers, rounds = (
    sys.argv[1],
    sys.argv[2],
    int(sys.argv[3]),
    int(sys.argv[4]),
    int(sys.argv[5]),
)
with open(requests_path, encoding="utf-8") as fh:
    raw = json.load(fh)
requests = [
    (Query(terms=tuple(terms), weights=tuple(weights)), threshold)
    for terms, weights, threshold in raw
]
mine = list(range(index, len(requests), n_workers))
client = GatewayClient(url)
query, threshold = requests[mine[0] if mine else 0]
client.search(query, threshold)  # warm the keep-alive connection
print("READY", flush=True)
assert sys.stdin.readline().strip() == "GO"
latencies = []
for _ in range(rounds):
    for i in mine:
        query, threshold = requests[i]
        start = time.perf_counter()
        client.search(query, threshold)
        latencies.append(time.perf_counter() - start)
client.close()
print(json.dumps({"count": len(latencies), "latencies": latencies}), flush=True)
'''


def _spawn_announced(cli_args, pattern):
    """Start a ``repro serve ...`` process; return (process, url)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *cli_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    url, deadline = None, time.time() + 90
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.search(pattern, line)
        if match:
            url = match.group(1)
            break
    if url is None:
        _stop_fleet([proc])
        raise AssertionError(f"server did not announce a URL for {cli_args}")
    return proc, url


def _mp_closed_loop(url, requests_path, script_path, n_workers, rounds):
    """Drive the workload from ``n_workers`` worker *processes*.

    Workers warm up, report READY, and start on a GO barrier, so process
    startup cost stays outside the timed window.  Returns
    ``(total_requests, wall_seconds, sorted_latencies)``.
    """
    workers = [
        subprocess.Popen(
            [
                sys.executable,
                str(script_path),
                url,
                str(requests_path),
                str(index),
                str(n_workers),
                str(rounds),
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        for index in range(n_workers)
    ]
    try:
        for worker in workers:
            line = worker.stdout.readline()
            assert line.strip() == "READY", f"worker failed to start: {line!r}"
        start = time.perf_counter()
        for worker in workers:
            worker.stdin.write("GO\n")
            worker.stdin.flush()
        total, latencies = 0, []
        for worker in workers:
            payload = json.loads(worker.stdout.readline())
            total += payload["count"]
            latencies.extend(payload["latencies"])
        wall = time.perf_counter() - start
    finally:
        _stop_fleet(workers)
    return total, wall, sorted(latencies)


def _merge_json(path: Path, updates: dict) -> dict:
    """Read-modify-write ``path``: lanes written by the other serving
    benches survive, so the artifact accumulates the full picture."""
    report = {}
    if path.exists():
        try:
            report = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            report = {}
    report.update(updates)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return report


def test_sharded_coordinator_throughput_vs_single_broker(tmp_path):
    model = _fleet_model()
    collections = [model.generate_group(group) for group in range(N_ENGINES)]
    queries = QueryLogModel(model, seed=43).generate(SHARDED_QUERIES)
    requests = [
        (query, THRESHOLDS[i % len(THRESHOLDS)])
        for i, query in enumerate(queries)
    ]
    paths = []
    for collection in collections:
        path = tmp_path / f"{collection.name}.jsonl.gz"
        save_collection(collection, path)
        paths.append(str(path))
    requests_path = tmp_path / "requests.json"
    requests_path.write_text(
        json.dumps(
            [
                [list(q.terms), list(q.weights), threshold]
                for q, threshold in requests
            ]
        ),
        encoding="utf-8",
    )
    script_path = tmp_path / "loadgen_worker.py"
    script_path.write_text(_LOADGEN_SOURCE, encoding="utf-8")

    servers = []
    try:
        single_proc, single_url = _spawn_announced(
            [
                "gateway",
                "--collections",
                *paths,
                "--workers",
                str(N_ENGINES),
                "--max-active",
                str(SHARDED_WORKERS),
                "--max-queued",
                "64",
            ],
            r"serving gateway at (http://\S+)",
        )
        servers.append(single_proc)
        sharded_proc, sharded_url = _spawn_announced(
            [
                "coordinator",
                "--shards",
                str(N_SHARDS),
                "--collections",
                *paths,
                "--max-active",
                str(SHARDED_WORKERS),
                "--max-queued",
                "64",
            ],
            r"serving coordinator at (http://\S+)",
        )
        servers.append(sharded_proc)
        coalesced_proc, coalesced_url = _spawn_announced(
            [
                "coordinator",
                "--shards",
                str(N_SHARDS),
                "--collections",
                *paths,
                "--max-active",
                str(SHARDED_WORKERS),
                "--max-queued",
                "64",
                "--coalesce-window-ms",
                "5",
                "--coalesce-max-batch",
                "64",
            ],
            r"serving coordinator at (http://\S+)",
        )
        servers.append(coalesced_proc)

        # Exactness first, outside the timed section: both coordinators'
        # merged rankings are exactly the in-process columnar broker's.
        local_broker = MetasearchBroker(columnar=True)
        for collection in collections:
            local_broker.register(SearchEngine(collection))
        for url in (sharded_url, coalesced_url):
            client = GatewayClient(url)
            for query, threshold in requests:
                sharded = client.search(query, threshold)
                local = local_broker.search(query, threshold)
                assert sharded.hits == local.hits
                assert sharded.estimates == local.estimates
                assert sharded.invoked == local.invoked
                assert sharded.failures == local.failures
            client.close()

        single_total, single_wall, single_lat = _mp_closed_loop(
            single_url, requests_path, script_path, SHARDED_WORKERS,
            SHARDED_ROUNDS,
        )
        sharded_total, sharded_wall, sharded_lat = _mp_closed_loop(
            sharded_url, requests_path, script_path, SHARDED_WORKERS,
            SHARDED_ROUNDS,
        )
        coalesced_total, coalesced_wall, coalesced_lat = _mp_closed_loop(
            coalesced_url, requests_path, script_path, SHARDED_WORKERS,
            SHARDED_ROUNDS,
        )
        assert single_total == sharded_total == len(requests) * SHARDED_ROUNDS
        assert coalesced_total == sharded_total
    finally:
        _stop_fleet(servers)

    single_rps = single_total / single_wall if single_wall > 0 else 0.0
    sharded_rps = sharded_total / sharded_wall if sharded_wall > 0 else 0.0
    coalesced_rps = (
        coalesced_total / coalesced_wall if coalesced_wall > 0 else 0.0
    )
    speedup = sharded_rps / single_rps if single_rps > 0 else float("inf")
    cpus = len(os.sched_getaffinity(0))
    floor_env = os.environ.get("REPRO_BENCH_SHARDED_FLOOR")
    floor_armed = cpus >= 4 if floor_env is None else floor_env == "1"

    report = {
        "bench": "sharded_serving",
        "n_shards": N_SHARDS,
        "n_engines": N_ENGINES,
        "queries": len(requests),
        "rounds": SHARDED_ROUNDS,
        "loadgen_processes": SHARDED_WORKERS,
        "cpus": cpus,
        "floor_armed": floor_armed,
        "throughput_floor": 2.0,
        "single_broker": {
            "requests": single_total,
            "seconds": single_wall,
            "rps": single_rps,
            "p50_ms": 1000.0 * _percentile(single_lat, 0.50),
            "p95_ms": 1000.0 * _percentile(single_lat, 0.95),
        },
        "sharded": {
            "requests": sharded_total,
            "seconds": sharded_wall,
            "rps": sharded_rps,
            "p50_ms": 1000.0 * _percentile(sharded_lat, 0.50),
            "p95_ms": 1000.0 * _percentile(sharded_lat, 0.95),
        },
        "sharded_coalesced": {
            "requests": coalesced_total,
            "seconds": coalesced_wall,
            "rps": coalesced_rps,
            "p50_ms": 1000.0 * _percentile(coalesced_lat, 0.50),
            "p95_ms": 1000.0 * _percentile(coalesced_lat, 0.95),
            "window_ms": 5.0,
            "max_batch": 64,
        },
        "speedup": speedup,
        "exactness": "exact",
    }
    _merge_json(SHARDED_JSON, report)

    lines = [
        "",
        f"=== sharded coordinator ({N_SHARDS} shard processes, asyncio "
        f"frontend) vs single-broker gateway ===",
        f"workload   : {len(requests)} Zipf queries x {SHARDED_ROUNDS} "
        f"rounds from {SHARDED_WORKERS} load-generator processes",
        f"{'path':<14} {'req/s':>8} {'p50 ms':>8} {'p95 ms':>8}",
        f"{'single':<14} {single_rps:>8.1f} "
        f"{1000.0 * _percentile(single_lat, 0.50):>8.2f} "
        f"{1000.0 * _percentile(single_lat, 0.95):>8.2f}",
        f"{'sharded x4':<14} {sharded_rps:>8.1f} "
        f"{1000.0 * _percentile(sharded_lat, 0.50):>8.2f} "
        f"{1000.0 * _percentile(sharded_lat, 0.95):>8.2f}",
        f"{'  + coalesce':<14} {coalesced_rps:>8.1f} "
        f"{1000.0 * _percentile(coalesced_lat, 0.50):>8.2f} "
        f"{1000.0 * _percentile(coalesced_lat, 0.95):>8.2f}",
        f"speedup    : {speedup:.2f}x "
        f"(floor 2.0x {'armed' if floor_armed else 'disarmed'}, "
        f"{cpus} cpu(s) visible)",
        f"equality   : exact ({len(requests)} coordinator responses vs "
        f"in-process columnar broker)",
    ]
    emit("sharded_serving", "\n".join(lines))

    if floor_armed:
        assert speedup >= 2.0, (
            f"sharded throughput {sharded_rps:.1f} rps is only {speedup:.2f}x "
            f"the single-broker {single_rps:.1f} rps (floor 2.0x at "
            f"{N_SHARDS} shards)"
        )


# -- front-door coalescing: window batching vs per-request scatter -----------


def _estimate_body(query, threshold) -> bytes:
    return json.dumps(
        {"query": query_to_wire(query), "threshold": threshold}
    ).encode("utf-8")


def _inproc_closed_loop(app, bodies, concurrency, rounds):
    """Drive ``bodies`` through ``app.handle`` from ``concurrency``
    closed-loop threads; returns (total, wall_seconds, sorted_latencies).

    Calling the app in-process keeps the front door out of the measured
    path on purpose: the shard RPCs (the cost coalescing collapses) are
    still real HTTP round trips to live shard servers.
    """
    order = list(range(len(bodies))) * rounds
    latencies = [0.0] * len(order)
    cursor = iter(range(len(order)))
    lock = threading.Lock()

    def worker():
        while True:
            with lock:
                slot = next(cursor, None)
            if slot is None:
                return
            body = bodies[order[slot]]
            start = time.perf_counter()
            response = app.handle("POST", "/estimate", {}, body)
            latencies[slot] = time.perf_counter() - start
            assert response.status == 200, response.body_bytes()

    threads = [threading.Thread(target=worker) for __ in range(concurrency)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return len(order), time.perf_counter() - start, sorted(latencies)


def _coalesce_metrics(registry) -> dict:
    """Flush-reason counts and occupancy distribution for the estimate
    window, read straight from the in-process registry."""
    flush_reasons = {}
    occupancy = {}
    wait = {}
    for entry in registry.snapshot():
        labels = entry.get("labels", {})
        if (
            entry["name"] == "serving.coalesce.flush"
            and labels.get("window") == "estimate"
        ):
            flush_reasons[labels["reason"]] = entry["value"]
        elif (
            entry["name"] == "serving.coalesce.batch.occupancy"
            and labels.get("window") == "estimate"
        ):
            occupancy = {
                "count": entry["count"],
                "sum": entry["sum"],
                "buckets": entry["buckets"],
            }
        elif (
            entry["name"] == "serving.coalesce.wait.seconds"
            and labels.get("window") == "estimate"
        ):
            wait = {"count": entry["count"], "sum": entry["sum"]}
    return {
        "flush_reasons": flush_reasons,
        "occupancy": occupancy,
        "wait_seconds": wait,
    }


def _write_sharded_txt(report: dict) -> None:
    """The human-readable breakdown, including why the sharded lane
    regresses on starved CPU and what coalescing recovers."""
    lanes = report.get("coalescing", {}).get("lanes", {})
    single = report.get("single_broker", {})
    sharded = report.get("sharded", {})
    sharded_coalesced = report.get("sharded_coalesced", {})
    speedup = report.get("speedup")
    cpus = report.get("cpus", "?")
    lines = [
        "sharded serving: measured breakdown",
        "===================================",
        "",
        "Lane A - multi-process, /search workload "
        f"({report.get('loadgen_processes', '?')} load-generator "
        "processes):",
    ]
    for name, lane in (
        ("single-broker gateway", single),
        (f"{report.get('n_shards', 4)}-shard coordinator", sharded),
        ("coordinator + coalescing (5 ms window)", sharded_coalesced),
    ):
        if lane:
            lines.append(
                f"  {name:<40} {lane.get('rps', 0.0):8.1f} req/s   "
                f"p50 {lane.get('p50_ms', 0.0):7.2f} ms   "
                f"p95 {lane.get('p95_ms', 0.0):7.2f} ms"
            )
    if speedup is not None:
        lines += [
            "",
            f"sharded/single speedup: {speedup:.2f}x on {cpus} visible "
            "cpu(s).",
        ]
        if isinstance(speedup, float) and speedup < 1.0:
            lines += [
                "",
                "Why the sharded lane regresses here (the ~"
                f"{speedup:.2f}x): scatter-gather turns every request "
                f"into {report.get('n_shards', 4)} shard RPCs plus a "
                "merge.  That trade buys parallel compute across "
                "processes - but on a container with "
                f"{cpus} visible cpu(s) there is no parallelism to buy, "
                "so the per-request RPC fan-out is pure overhead: "
                "4x the HTTP round trips, 4x the JSON codec work, all "
                "serialized onto one core.  The floor stays disarmed "
                "below 4 cpus for exactly this reason.",
            ]
    if lanes:
        lines += [
            "",
            "Lane B - in-process coordinator, /estimate workload, warm "
            "shard caches (scatter RPCs dominate; coalescing window "
            f"{report['coalescing'].get('window_ms', '?')} ms, max batch "
            f"{report['coalescing'].get('max_batch', '?')}):",
            f"  {'concurrency':>11} {'off req/s':>10} {'on req/s':>10} "
            f"{'speedup':>8} {'off p50':>9} {'on p50':>9}",
        ]
        for key in sorted(lanes, key=int):
            lane = lanes[key]
            lines.append(
                f"  {key:>11} {lane['off']['rps']:>10.1f} "
                f"{lane['on']['rps']:>10.1f} {lane['speedup']:>7.2f}x "
                f"{lane['off']['p50_ms']:>8.2f}m {lane['on']['p50_ms']:>8.2f}m"
            )
        coalesce = report["coalescing"]
        lines += [
            "",
            "How coalescing recovers the scatter overhead: concurrent "
            "requests gathered by one window leave as ONE /estimate RPC "
            "per shard (coordinator.scatter.rpcs == fanouts x shards, "
            "asserted), so the per-request RPC cost is amortized across "
            "the window's occupancy instead of paid per request.  A lone "
            "request takes the idle fast-path and never waits for the "
            "window (p50 delta at concurrency 1: "
            f"{coalesce.get('idle_p50_delta_ms', 0.0):.3f} ms, floor "
            "<1 ms).",
            "",
            f"flush reasons: {coalesce.get('metrics', {}).get('flush_reasons', {})}",
            f"occupancy: {coalesce.get('metrics', {}).get('occupancy', {})}",
        ]
    SHARDED_TXT.parent.mkdir(parents=True, exist_ok=True)
    SHARDED_TXT.write_text("\n".join(lines) + "\n", encoding="utf-8")


def test_coalescing_gateway_throughput():
    model = _fleet_model()
    collections = [model.generate_group(group) for group in range(N_ENGINES)]
    queries = QueryLogModel(model, seed=44).generate(COALESCE_QUERIES)
    bodies = [
        _estimate_body(query, THRESHOLDS[i % len(THRESHOLDS)])
        for i, query in enumerate(queries)
    ]

    shard_servers = []
    try:
        urls = []
        for index, slice_collections in enumerate(
            partition_round_robin(collections, N_SHARDS)
        ):
            broker = MetasearchBroker(columnar=True)
            for collection in slice_collections:
                engine = SearchEngine(collection)
                broker.register(
                    engine, representative=build_representative(engine)
                )
            server = ServingServer(ShardApp(broker, shard_index=index))
            server.start_background()
            shard_servers.append(server)
            urls.append(server.url)

        registry = MetricsRegistry()
        fleet_on = ShardedFleet(urls, registry=registry).attach()
        app_on = CoordinatorApp(
            fleet_on,
            registry=registry,
            coalesce_window=COALESCE_WINDOW,
            coalesce_max_batch=COALESCE_MAX_BATCH,
            max_active=32,
            max_queued=128,
        )
        app_off = CoordinatorApp(
            ShardedFleet(urls).attach(), max_active=32, max_queued=128
        )

        # Warm every shard's estimate cache and assert on == off
        # byte-for-byte before any timing.
        for body in bodies:
            want = app_off.handle("POST", "/estimate", {}, body)
            got = app_on.handle("POST", "/estimate", {}, body)
            assert want.status == got.status == 200
            assert got.body_bytes() == want.body_bytes()

        lanes = {}
        for concurrency in COALESCE_CONCURRENCY:
            off_total, off_wall, off_lat = _inproc_closed_loop(
                app_off, bodies, concurrency, COALESCE_ROUNDS
            )
            on_total, on_wall, on_lat = _inproc_closed_loop(
                app_on, bodies, concurrency, COALESCE_ROUNDS
            )
            assert on_total == off_total == len(bodies) * COALESCE_ROUNDS
            off_rps = off_total / off_wall if off_wall > 0 else 0.0
            on_rps = on_total / on_wall if on_wall > 0 else 0.0
            lanes[str(concurrency)] = {
                "off": {
                    "rps": off_rps,
                    "p50_ms": 1000.0 * _percentile(off_lat, 0.50),
                    "p95_ms": 1000.0 * _percentile(off_lat, 0.95),
                },
                "on": {
                    "rps": on_rps,
                    "p50_ms": 1000.0 * _percentile(on_lat, 0.50),
                    "p95_ms": 1000.0 * _percentile(on_lat, 0.95),
                },
                "speedup": on_rps / off_rps if off_rps > 0 else float("inf"),
            }

        # The coordinator invariant behind the win: every scatter round
        # cost exactly one /estimate RPC per shard, whatever its width.
        fanouts = registry.value(
            "coordinator.scatter.fanouts", labels={"phase": "estimate"}
        )
        rpcs = registry.value(
            "coordinator.scatter.rpcs", labels={"phase": "estimate"}
        )
        assert fanouts and rpcs == fanouts * N_SHARDS
        on_requests = registry.value(
            "serving.coalesce.requests", labels={"window": "estimate"}
        )
        assert fanouts <= on_requests
        metrics = _coalesce_metrics(registry)
    finally:
        for server in shard_servers:
            server.drain(timeout=10)

    idle_delta_ms = (
        lanes["1"]["on"]["p50_ms"] - lanes["1"]["off"]["p50_ms"]
    )
    top = str(COALESCE_CONCURRENCY[-1])
    cpus = len(os.sched_getaffinity(0))
    floor_env = os.environ.get("REPRO_BENCH_COALESCE_FLOOR")
    floor_armed = cpus >= 4 if floor_env is None else floor_env == "1"

    coalescing = {
        "window_ms": 1000.0 * COALESCE_WINDOW,
        "max_batch": COALESCE_MAX_BATCH,
        "queries": len(bodies),
        "rounds": COALESCE_ROUNDS,
        "lanes": lanes,
        "idle_p50_delta_ms": idle_delta_ms,
        "scatter": {
            "fanouts": fanouts,
            "rpcs": rpcs,
            "requests": on_requests,
            "rpcs_per_fanout": rpcs / fanouts if fanouts else 0.0,
        },
        "metrics": metrics,
        "cpus": cpus,
        "floor_armed": floor_armed,
        "throughput_floor": 2.0,
        "exactness": "exact",
    }
    report = _merge_json(SHARDED_JSON, {"coalescing": coalescing})
    _write_sharded_txt(report)

    lines = [
        "",
        f"=== front-door coalescing over {N_SHARDS} shard servers "
        f"({len(bodies)} /estimate bodies x {COALESCE_ROUNDS} rounds, "
        "warm shard caches) ===",
        f"{'concurrency':>11} {'off req/s':>10} {'on req/s':>10} "
        f"{'speedup':>8}",
    ]
    for key in sorted(lanes, key=int):
        lane = lanes[key]
        lines.append(
            f"{key:>11} {lane['off']['rps']:>10.1f} "
            f"{lane['on']['rps']:>10.1f} {lane['speedup']:>7.2f}x"
        )
    lines += [
        f"idle path  : p50 delta {idle_delta_ms:+.3f} ms at concurrency 1 "
        "(floor <1 ms)",
        f"scatter    : {fanouts} fanouts x {N_SHARDS} shards = {rpcs} "
        f"RPCs for {on_requests} coalesced requests",
        f"flushes    : {metrics['flush_reasons']}",
    ]
    emit("coalescing", "\n".join(lines))

    assert idle_delta_ms < 1.0, (
        f"idle fast-path added {idle_delta_ms:.3f} ms p50 at concurrency 1"
    )
    if floor_armed:
        assert lanes[top]["speedup"] >= 2.0, (
            f"coalesced lane is only {lanes[top]['speedup']:.2f}x the "
            f"per-request lane at concurrency {top} (floor 2.0x)"
        )
