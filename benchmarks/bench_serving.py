"""Serving bench — gateway-over-HTTP versus the in-process broker.

A fleet of four engine-server *processes* (launched through ``repro serve
engine``, exactly as an operator would) sits behind an HTTP gateway.  A
closed-loop load generator drives Zipf queries through the gateway from
several concurrent workers, then replays the identical workload against an
in-process :class:`MetasearchBroker` over the same collections.

The bench asserts the wire adds **zero** answer drift — merged hits,
estimates, invoked engines and failures are all exactly equal — and
reports what it costs: throughput, latency percentiles, and the per-request
overhead over the in-process path.

The sharded bench pits the 4-shard scatter-gather coordinator (spawned
end-to-end through ``repro serve coordinator --shards 4``: four shard
worker processes plus the asyncio frontend) against the PR 4
single-broker gateway over the same collections, driven by a
*multi-process* closed-loop load generator (each worker is its own
Python process with its own keep-alive connection, barrier-released so
interpreter startup never lands inside the timed window).  Exactness vs
the in-process columnar broker is asserted outside the timed section;
the machine-readable outcome lands in ``BENCH_sharded_serving.json``
(override: ``REPRO_BENCH_SHARDED_JSON``).  The >=2x throughput floor is
armed only on machines with >=4 usable CPUs (a 1-CPU container cannot
express process-level parallelism; ``cpus`` and ``floor_armed`` are
recorded either way) — force it with ``REPRO_BENCH_SHARDED_FLOOR=1``/
``0``.

Knobs: ``REPRO_BENCH_SERVING_QUERIES`` (default 60), ``REPRO_BENCH_SEED``,
``REPRO_BENCH_SHARDED_QUERIES`` (default 40),
``REPRO_BENCH_SHARDED_ROUNDS`` (default 3),
``REPRO_BENCH_SHARDED_WORKERS`` (default 8 load-generator processes).
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.corpus import Query, save_collection
from repro.corpus.synth import NewsgroupModel, QueryLogModel
from repro.engine import SearchEngine
from repro.metasearch import MetasearchBroker
from repro.serving import GatewayApp, GatewayClient, RemoteEngine, ServingServer

from _bench_utils import BENCH_SEED, THRESHOLDS, emit

SERVING_QUERIES = int(os.environ.get("REPRO_BENCH_SERVING_QUERIES", "60"))
N_ENGINES = 4
WORKERS = 4

SHARDED_QUERIES = int(os.environ.get("REPRO_BENCH_SHARDED_QUERIES", "40"))
SHARDED_ROUNDS = int(os.environ.get("REPRO_BENCH_SHARDED_ROUNDS", "3"))
SHARDED_WORKERS = int(os.environ.get("REPRO_BENCH_SHARDED_WORKERS", "8"))
SHARDED_JSON = Path(
    os.environ.get("REPRO_BENCH_SHARDED_JSON", "BENCH_sharded_serving.json")
)
N_SHARDS = 4


def _fleet_model() -> NewsgroupModel:
    return NewsgroupModel(
        vocab_size=2000,
        topic_size=100,
        topic_band=(50, 800),
        mean_length=60,
        seed=BENCH_SEED,
        group_sizes=[40, 30, 25, 20],
    )


def _launch_fleet(collections, tmp):
    """Start one ``repro serve engine`` process per collection."""
    processes, urls = [], []
    for collection in collections:
        path = tmp / f"{collection.name}.jsonl.gz"
        save_collection(collection, path)
        processes.append(
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "serve",
                    "engine",
                    "--collection",
                    str(path),
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
        )
    for proc in processes:
        url = None
        deadline = time.time() + 30
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            match = re.search(r"serving engine at (http://\S+)", line)
            if match:
                url = match.group(1)
                break
        assert url, "engine server did not announce its URL"
        urls.append(url)
    return processes, urls


def _stop_fleet(processes):
    for proc in processes:
        proc.send_signal(signal.SIGTERM)
    for proc in processes:
        try:
            proc.communicate(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.communicate()


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _closed_loop(client, requests):
    """Drive ``requests`` through ``client`` from WORKERS threads.

    Returns (responses, latencies) in request order, plus the wall time.
    """
    responses = [None] * len(requests)
    latencies = [0.0] * len(requests)
    cursor = iter(range(len(requests)))
    lock = threading.Lock()

    def worker():
        while True:
            with lock:
                index = next(cursor, None)
            if index is None:
                return
            query, threshold = requests[index]
            start = time.perf_counter()
            responses[index] = client.search(query, threshold)
            latencies[index] = time.perf_counter() - start

    threads = [threading.Thread(target=worker) for __ in range(WORKERS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return responses, latencies, time.perf_counter() - start


def test_serving_gateway_exactness_and_overhead(benchmark, tmp_path):
    model = _fleet_model()
    collections = [model.generate_group(group) for group in range(N_ENGINES)]
    queries = QueryLogModel(model, seed=42).generate(SERVING_QUERIES)
    requests = [
        (query, THRESHOLDS[i % len(THRESHOLDS)])
        for i, query in enumerate(queries)
    ]

    processes, server = [], None
    try:
        processes, urls = _launch_fleet(collections, tmp_path)
        broker = MetasearchBroker(workers=N_ENGINES)
        for url in urls:
            remote = RemoteEngine(url)
            snapshot = remote.snapshot_representative()
            broker.register(remote, representative=snapshot.representative)
        server = ServingServer(
            GatewayApp(broker, max_active=WORKERS * 2, max_queued=64)
        )
        server.start_background()
        client = GatewayClient(server.url)

        # Warm the keep-alive connections before measuring.
        client.search(requests[0][0], requests[0][1])

        responses, latencies, wall = _closed_loop(client, requests)

        local_broker = MetasearchBroker()
        for collection in collections:
            local_broker.register(SearchEngine(collection))
        start = time.perf_counter()
        local = [
            local_broker.search(query, threshold)
            for query, threshold in requests
        ]
        local_seconds = time.perf_counter() - start

        for remote_response, local_response in zip(responses, local):
            assert remote_response.hits == local_response.hits
            assert remote_response.estimates == local_response.estimates
            assert remote_response.invoked == local_response.invoked
            assert remote_response.failures == local_response.failures

        ordered = sorted(latencies)
        throughput = len(requests) / wall if wall > 0 else float("inf")
        lines = [
            "",
            f"=== serving gateway over {N_ENGINES} engine-server processes, "
            f"{len(requests)} Zipf queries, {WORKERS} closed-loop workers ===",
            f"{'path':<11} {'seconds':>9} {'ms/req':>9}",
            f"{'gateway':<11} {wall:>9.2f} "
            f"{1000.0 * wall / len(requests):>9.2f}",
            f"{'in-process':<11} {local_seconds:>9.2f} "
            f"{1000.0 * local_seconds / len(requests):>9.2f}",
            f"throughput : {throughput:.1f} req/s through the gateway",
            f"latency    : p50 {1000.0 * _percentile(ordered, 0.50):.2f} ms, "
            f"p90 {1000.0 * _percentile(ordered, 0.90):.2f} ms, "
            f"p99 {1000.0 * _percentile(ordered, 0.99):.2f} ms",
            f"equality   : exact ({len(requests)} responses compared: "
            f"hits, estimates, invoked, failures)",
        ]
        emit("serving", "\n".join(lines))

        # Steady-state kernel: one warm request through the full stack
        # (gateway admission -> concurrent dispatch -> 4 HTTP engines).
        query, threshold = requests[0]
        benchmark(lambda: client.search(query, threshold))

        client.close()
    finally:
        if server is not None:
            server.drain(timeout=10)
        _stop_fleet(processes)


# -- sharded topology vs single-broker gateway ------------------------------

_LOADGEN_SOURCE = '''
"""Closed-loop load-generator worker: one process, one connection."""
import json
import sys
import time

from repro.corpus import Query
from repro.serving import GatewayClient

url, requests_path, index, n_workers, rounds = (
    sys.argv[1],
    sys.argv[2],
    int(sys.argv[3]),
    int(sys.argv[4]),
    int(sys.argv[5]),
)
with open(requests_path, encoding="utf-8") as fh:
    raw = json.load(fh)
requests = [
    (Query(terms=tuple(terms), weights=tuple(weights)), threshold)
    for terms, weights, threshold in raw
]
mine = list(range(index, len(requests), n_workers))
client = GatewayClient(url)
query, threshold = requests[mine[0] if mine else 0]
client.search(query, threshold)  # warm the keep-alive connection
print("READY", flush=True)
assert sys.stdin.readline().strip() == "GO"
latencies = []
for _ in range(rounds):
    for i in mine:
        query, threshold = requests[i]
        start = time.perf_counter()
        client.search(query, threshold)
        latencies.append(time.perf_counter() - start)
client.close()
print(json.dumps({"count": len(latencies), "latencies": latencies}), flush=True)
'''


def _spawn_announced(cli_args, pattern):
    """Start a ``repro serve ...`` process; return (process, url)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *cli_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    url, deadline = None, time.time() + 90
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        match = re.search(pattern, line)
        if match:
            url = match.group(1)
            break
    if url is None:
        _stop_fleet([proc])
        raise AssertionError(f"server did not announce a URL for {cli_args}")
    return proc, url


def _mp_closed_loop(url, requests_path, script_path, n_workers, rounds):
    """Drive the workload from ``n_workers`` worker *processes*.

    Workers warm up, report READY, and start on a GO barrier, so process
    startup cost stays outside the timed window.  Returns
    ``(total_requests, wall_seconds, sorted_latencies)``.
    """
    workers = [
        subprocess.Popen(
            [
                sys.executable,
                str(script_path),
                url,
                str(requests_path),
                str(index),
                str(n_workers),
                str(rounds),
            ],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        for index in range(n_workers)
    ]
    try:
        for worker in workers:
            line = worker.stdout.readline()
            assert line.strip() == "READY", f"worker failed to start: {line!r}"
        start = time.perf_counter()
        for worker in workers:
            worker.stdin.write("GO\n")
            worker.stdin.flush()
        total, latencies = 0, []
        for worker in workers:
            payload = json.loads(worker.stdout.readline())
            total += payload["count"]
            latencies.extend(payload["latencies"])
        wall = time.perf_counter() - start
    finally:
        _stop_fleet(workers)
    return total, wall, sorted(latencies)


def test_sharded_coordinator_throughput_vs_single_broker(tmp_path):
    model = _fleet_model()
    collections = [model.generate_group(group) for group in range(N_ENGINES)]
    queries = QueryLogModel(model, seed=43).generate(SHARDED_QUERIES)
    requests = [
        (query, THRESHOLDS[i % len(THRESHOLDS)])
        for i, query in enumerate(queries)
    ]
    paths = []
    for collection in collections:
        path = tmp_path / f"{collection.name}.jsonl.gz"
        save_collection(collection, path)
        paths.append(str(path))
    requests_path = tmp_path / "requests.json"
    requests_path.write_text(
        json.dumps(
            [
                [list(q.terms), list(q.weights), threshold]
                for q, threshold in requests
            ]
        ),
        encoding="utf-8",
    )
    script_path = tmp_path / "loadgen_worker.py"
    script_path.write_text(_LOADGEN_SOURCE, encoding="utf-8")

    servers = []
    try:
        single_proc, single_url = _spawn_announced(
            [
                "gateway",
                "--collections",
                *paths,
                "--workers",
                str(N_ENGINES),
                "--max-active",
                str(SHARDED_WORKERS),
                "--max-queued",
                "64",
            ],
            r"serving gateway at (http://\S+)",
        )
        servers.append(single_proc)
        sharded_proc, sharded_url = _spawn_announced(
            [
                "coordinator",
                "--shards",
                str(N_SHARDS),
                "--collections",
                *paths,
                "--max-active",
                str(SHARDED_WORKERS),
                "--max-queued",
                "64",
            ],
            r"serving coordinator at (http://\S+)",
        )
        servers.append(sharded_proc)

        # Exactness first, outside the timed section: the coordinator's
        # merged rankings are exactly the in-process columnar broker's.
        local_broker = MetasearchBroker(columnar=True)
        for collection in collections:
            local_broker.register(SearchEngine(collection))
        client = GatewayClient(sharded_url)
        for query, threshold in requests:
            sharded = client.search(query, threshold)
            local = local_broker.search(query, threshold)
            assert sharded.hits == local.hits
            assert sharded.estimates == local.estimates
            assert sharded.invoked == local.invoked
            assert sharded.failures == local.failures
        client.close()

        single_total, single_wall, single_lat = _mp_closed_loop(
            single_url, requests_path, script_path, SHARDED_WORKERS,
            SHARDED_ROUNDS,
        )
        sharded_total, sharded_wall, sharded_lat = _mp_closed_loop(
            sharded_url, requests_path, script_path, SHARDED_WORKERS,
            SHARDED_ROUNDS,
        )
        assert single_total == sharded_total == len(requests) * SHARDED_ROUNDS
    finally:
        _stop_fleet(servers)

    single_rps = single_total / single_wall if single_wall > 0 else 0.0
    sharded_rps = sharded_total / sharded_wall if sharded_wall > 0 else 0.0
    speedup = sharded_rps / single_rps if single_rps > 0 else float("inf")
    cpus = len(os.sched_getaffinity(0))
    floor_env = os.environ.get("REPRO_BENCH_SHARDED_FLOOR")
    floor_armed = cpus >= 4 if floor_env is None else floor_env == "1"

    report = {
        "bench": "sharded_serving",
        "n_shards": N_SHARDS,
        "n_engines": N_ENGINES,
        "queries": len(requests),
        "rounds": SHARDED_ROUNDS,
        "loadgen_processes": SHARDED_WORKERS,
        "cpus": cpus,
        "floor_armed": floor_armed,
        "throughput_floor": 2.0,
        "single_broker": {
            "requests": single_total,
            "seconds": single_wall,
            "rps": single_rps,
            "p50_ms": 1000.0 * _percentile(single_lat, 0.50),
            "p95_ms": 1000.0 * _percentile(single_lat, 0.95),
        },
        "sharded": {
            "requests": sharded_total,
            "seconds": sharded_wall,
            "rps": sharded_rps,
            "p50_ms": 1000.0 * _percentile(sharded_lat, 0.50),
            "p95_ms": 1000.0 * _percentile(sharded_lat, 0.95),
        },
        "speedup": speedup,
        "exactness": "exact",
    }
    SHARDED_JSON.write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )

    lines = [
        "",
        f"=== sharded coordinator ({N_SHARDS} shard processes, asyncio "
        f"frontend) vs single-broker gateway ===",
        f"workload   : {len(requests)} Zipf queries x {SHARDED_ROUNDS} "
        f"rounds from {SHARDED_WORKERS} load-generator processes",
        f"{'path':<14} {'req/s':>8} {'p50 ms':>8} {'p95 ms':>8}",
        f"{'single':<14} {single_rps:>8.1f} "
        f"{1000.0 * _percentile(single_lat, 0.50):>8.2f} "
        f"{1000.0 * _percentile(single_lat, 0.95):>8.2f}",
        f"{'sharded x4':<14} {sharded_rps:>8.1f} "
        f"{1000.0 * _percentile(sharded_lat, 0.50):>8.2f} "
        f"{1000.0 * _percentile(sharded_lat, 0.95):>8.2f}",
        f"speedup    : {speedup:.2f}x "
        f"(floor 2.0x {'armed' if floor_armed else 'disarmed'}, "
        f"{cpus} cpu(s) visible)",
        f"equality   : exact ({len(requests)} coordinator responses vs "
        f"in-process columnar broker)",
    ]
    emit("sharded_serving", "\n".join(lines))

    if floor_armed:
        assert speedup >= 2.0, (
            f"sharded throughput {sharded_rps:.1f} rps is only {speedup:.2f}x "
            f"the single-broker {single_rps:.1f} rps (floor 2.0x at "
            f"{N_SHARDS} shards)"
        )
