"""Serving bench — gateway-over-HTTP versus the in-process broker.

A fleet of four engine-server *processes* (launched through ``repro serve
engine``, exactly as an operator would) sits behind an HTTP gateway.  A
closed-loop load generator drives Zipf queries through the gateway from
several concurrent workers, then replays the identical workload against an
in-process :class:`MetasearchBroker` over the same collections.

The bench asserts the wire adds **zero** answer drift — merged hits,
estimates, invoked engines and failures are all exactly equal — and
reports what it costs: throughput, latency percentiles, and the per-request
overhead over the in-process path.

Knobs: ``REPRO_BENCH_SERVING_QUERIES`` (default 60), ``REPRO_BENCH_SEED``.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time

from repro.corpus import save_collection
from repro.corpus.synth import NewsgroupModel, QueryLogModel
from repro.engine import SearchEngine
from repro.metasearch import MetasearchBroker
from repro.serving import GatewayApp, GatewayClient, RemoteEngine, ServingServer

from _bench_utils import BENCH_SEED, THRESHOLDS, emit

SERVING_QUERIES = int(os.environ.get("REPRO_BENCH_SERVING_QUERIES", "60"))
N_ENGINES = 4
WORKERS = 4


def _fleet_model() -> NewsgroupModel:
    return NewsgroupModel(
        vocab_size=2000,
        topic_size=100,
        topic_band=(50, 800),
        mean_length=60,
        seed=BENCH_SEED,
        group_sizes=[40, 30, 25, 20],
    )


def _launch_fleet(collections, tmp):
    """Start one ``repro serve engine`` process per collection."""
    processes, urls = [], []
    for collection in collections:
        path = tmp / f"{collection.name}.jsonl.gz"
        save_collection(collection, path)
        processes.append(
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "serve",
                    "engine",
                    "--collection",
                    str(path),
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
        )
    for proc in processes:
        url = None
        deadline = time.time() + 30
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            match = re.search(r"serving engine at (http://\S+)", line)
            if match:
                url = match.group(1)
                break
        assert url, "engine server did not announce its URL"
        urls.append(url)
    return processes, urls


def _stop_fleet(processes):
    for proc in processes:
        proc.send_signal(signal.SIGTERM)
    for proc in processes:
        try:
            proc.communicate(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.communicate()


def _percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def _closed_loop(client, requests):
    """Drive ``requests`` through ``client`` from WORKERS threads.

    Returns (responses, latencies) in request order, plus the wall time.
    """
    responses = [None] * len(requests)
    latencies = [0.0] * len(requests)
    cursor = iter(range(len(requests)))
    lock = threading.Lock()

    def worker():
        while True:
            with lock:
                index = next(cursor, None)
            if index is None:
                return
            query, threshold = requests[index]
            start = time.perf_counter()
            responses[index] = client.search(query, threshold)
            latencies[index] = time.perf_counter() - start

    threads = [threading.Thread(target=worker) for __ in range(WORKERS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return responses, latencies, time.perf_counter() - start


def test_serving_gateway_exactness_and_overhead(benchmark, tmp_path):
    model = _fleet_model()
    collections = [model.generate_group(group) for group in range(N_ENGINES)]
    queries = QueryLogModel(model, seed=42).generate(SERVING_QUERIES)
    requests = [
        (query, THRESHOLDS[i % len(THRESHOLDS)])
        for i, query in enumerate(queries)
    ]

    processes, server = [], None
    try:
        processes, urls = _launch_fleet(collections, tmp_path)
        broker = MetasearchBroker(workers=N_ENGINES)
        for url in urls:
            remote = RemoteEngine(url)
            snapshot = remote.snapshot_representative()
            broker.register(remote, representative=snapshot.representative)
        server = ServingServer(
            GatewayApp(broker, max_active=WORKERS * 2, max_queued=64)
        )
        server.start_background()
        client = GatewayClient(server.url)

        # Warm the keep-alive connections before measuring.
        client.search(requests[0][0], requests[0][1])

        responses, latencies, wall = _closed_loop(client, requests)

        local_broker = MetasearchBroker()
        for collection in collections:
            local_broker.register(SearchEngine(collection))
        start = time.perf_counter()
        local = [
            local_broker.search(query, threshold)
            for query, threshold in requests
        ]
        local_seconds = time.perf_counter() - start

        for remote_response, local_response in zip(responses, local):
            assert remote_response.hits == local_response.hits
            assert remote_response.estimates == local_response.estimates
            assert remote_response.invoked == local_response.invoked
            assert remote_response.failures == local_response.failures

        ordered = sorted(latencies)
        throughput = len(requests) / wall if wall > 0 else float("inf")
        lines = [
            "",
            f"=== serving gateway over {N_ENGINES} engine-server processes, "
            f"{len(requests)} Zipf queries, {WORKERS} closed-loop workers ===",
            f"{'path':<11} {'seconds':>9} {'ms/req':>9}",
            f"{'gateway':<11} {wall:>9.2f} "
            f"{1000.0 * wall / len(requests):>9.2f}",
            f"{'in-process':<11} {local_seconds:>9.2f} "
            f"{1000.0 * local_seconds / len(requests):>9.2f}",
            f"throughput : {throughput:.1f} req/s through the gateway",
            f"latency    : p50 {1000.0 * _percentile(ordered, 0.50):.2f} ms, "
            f"p90 {1000.0 * _percentile(ordered, 0.90):.2f} ms, "
            f"p99 {1000.0 * _percentile(ordered, 0.99):.2f} ms",
            f"equality   : exact ({len(requests)} responses compared: "
            f"hits, estimates, invoked, failures)",
        ]
        emit("serving", "\n".join(lines))

        # Steady-state kernel: one warm request through the full stack
        # (gateway admission -> concurrent dispatch -> 4 HTTP engines).
        query, threshold = requests[0]
        benchmark(lambda: client.search(query, threshold))

        client.close()
    finally:
        if server is not None:
            server.drain(timeout=10)
        _stop_fleet(processes)
