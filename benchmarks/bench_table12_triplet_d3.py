"""Table 12 — estimated max weight on D3 (most heterogeneous database).
Benchmarks the as_triplets representative derivation."""

from repro.evaluation import format_combined_table

from _bench_utils import print_with_reference

DB = "D3"
TABLE = "table12"


def test_table12_triplet_d3(benchmark, results, databases):
    __, rep = databases[DB]
    benchmark(rep.as_triplets)
    result = results.triplet(DB)
    print_with_reference(TABLE, format_combined_table(result, "subrange"))
    exact = results.exact(DB).metrics["subrange"]
    triplet = result.metrics["subrange"]
    assert sum(r.mismatch for r in triplet) > sum(r.mismatch for r in exact)
    assert sum(r.d_avgsim for r in triplet) > sum(r.d_avgsim for r in exact)
