"""Table 11 — estimated max weight on D2.  Benchmarks the triplet-mode
per-term polynomial construction (includes the normal-quantile call)."""

from repro.core import SubrangeEstimator
from repro.evaluation import format_combined_table

from _bench_utils import print_with_reference

DB = "D2"
TABLE = "table11"


def test_table11_triplet_d2(benchmark, results, databases):
    __, rep = databases[DB]
    estimator = SubrangeEstimator(use_stored_max=False)
    stats = [s.without_max_weight() for __, s in list(rep.items())[:500]]

    def build_polynomials():
        for s in stats:
            estimator.term_polynomial(0.7, s, rep.n_documents)

    benchmark(build_polynomials)
    result = results.triplet(DB)
    print_with_reference(TABLE, format_combined_table(result, "subrange"))
    exact = results.exact(DB).metrics["subrange"]
    triplet = result.metrics["subrange"]
    assert sum(r.mismatch for r in triplet) > sum(r.mismatch for r in exact)
    assert sum(r.d_avgsim for r in triplet) > sum(r.d_avgsim for r in exact)
