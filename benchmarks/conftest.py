"""Shared fixtures for the benchmark harness.

Each ``bench_table*.py`` module regenerates one table of the paper.  The
expensive artifacts — the full-size synthetic D1/D2/D3, the 6,234-query log,
and the per-database experiment sweeps — are built once per session and
shared.  Environment knobs:

* ``REPRO_BENCH_QUERIES`` — query-log size (default 6234, the paper's).
* ``REPRO_BENCH_SEED`` — corpus seed (default 1999).

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark times the
estimation kernel the table exercises; the regenerated table itself is
printed to stdout (pass ``-s`` to stream it; captured output is shown for
failures and with ``-rA``).
"""

from __future__ import annotations

import pytest

from repro.core import (
    GlossHighCorrelationEstimator,
    PreviousMethodEstimator,
    SubrangeEstimator,
)
from repro.corpus.synth import NewsgroupModel, QueryLogModel, build_paper_databases
from repro.engine import SearchEngine
from repro.evaluation import MethodSpec, run_usefulness_experiment
from repro.representatives import build_representative, quantize_representative

from _bench_utils import BENCH_QUERIES, BENCH_SEED, THRESHOLDS


@pytest.fixture(scope="session")
def corpus_model():
    return NewsgroupModel(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def databases(corpus_model):
    """{'D1'|'D2'|'D3': (engine, exact_representative)}."""
    d1, d2, d3 = build_paper_databases(corpus_model)
    out = {}
    for collection in (d1, d2, d3):
        engine = SearchEngine(collection)
        out[collection.name] = (engine, build_representative(engine))
    return out


@pytest.fixture(scope="session")
def query_log(corpus_model):
    return QueryLogModel(corpus_model).generate(BENCH_QUERIES)


class _ResultCache:
    """Session-wide cache so table pairs (1&2, 3&4, ...) share one sweep."""

    def __init__(self, databases, query_log):
        self._databases = databases
        self._query_log = query_log
        self._cache = {}

    def _run(self, key, engine, methods):
        if key not in self._cache:
            self._cache[key] = run_usefulness_experiment(
                engine, self._query_log, methods, thresholds=THRESHOLDS
            )
        return self._cache[key]

    def exact(self, db: str):
        """Three-method comparison on the exact quadruplet representative
        (Tables 1-6)."""
        engine, rep = self._databases[db]
        methods = [
            MethodSpec("gloss-hc", GlossHighCorrelationEstimator(), rep),
            MethodSpec("prev", PreviousMethodEstimator(), rep),
            MethodSpec("subrange", SubrangeEstimator(), rep),
        ]
        return self._run(("exact", db), engine, methods)

    def quantized(self, db: str):
        """Subrange method on the one-byte representative (Tables 7-9)."""
        engine, rep = self._databases[db]
        methods = [
            MethodSpec(
                "subrange",
                SubrangeEstimator(),
                quantize_representative(rep),
                label="subrange, 1-byte representative",
            )
        ]
        return self._run(("quantized", db), engine, methods)

    def triplet(self, db: str):
        """Subrange method with estimated max weight (Tables 10-12)."""
        engine, rep = self._databases[db]
        methods = [
            MethodSpec(
                "subrange",
                SubrangeEstimator(use_stored_max=False),
                rep.as_triplets(),
                label="subrange, estimated max weight",
            )
        ]
        return self._run(("triplet", db), engine, methods)


@pytest.fixture(scope="session")
def results(databases, query_log):
    return _ResultCache(databases, query_log)


@pytest.fixture(scope="session")
def sample_queries(query_log):
    """A small fixed slice used to time estimation kernels."""
    return query_log[:50]
