"""Table 5 — match/mismatch on D3 (merge of the 26 smallest newsgroups,
the most heterogeneous database).  Benchmarks the gGlOSS high-correlation
kernel, the cheapest of the three methods."""

from repro.core import GlossHighCorrelationEstimator
from repro.evaluation import format_match_table

from _bench_utils import THRESHOLDS, print_with_reference

DB = "D3"
TABLE = "table5"


def test_table05_match_d3(benchmark, results, databases, sample_queries):
    __, rep = databases[DB]
    estimator = GlossHighCorrelationEstimator()

    def estimate_all():
        for query in sample_queries:
            estimator.estimate_many(query, rep, THRESHOLDS)

    benchmark(estimate_all)
    result = results.exact(DB)
    print_with_reference(TABLE, format_match_table(result))
    rows = result.metrics
    for i in range(len(THRESHOLDS)):
        assert rows["subrange"][i].match >= rows["prev"][i].match
        assert rows["prev"][i].match >= rows["gloss-hc"][i].match
