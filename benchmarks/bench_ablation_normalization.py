"""Ablation — estimation accuracy under alternative similarity functions.

The paper notes its guarantee "applies to other similarity functions such
as [16]" (pivoted document length normalization).  This bench rebuilds D1's
engine and representative under Cosine, pivoted (slope 0.25) and idf-scaled
Cosine, and shows the subrange estimator's accuracy is a property of the
representative/weight-space contract, not of the Cosine function.
"""

from repro.core import SubrangeEstimator
from repro.engine import SearchEngine
from repro.evaluation import MethodSpec, run_usefulness_experiment
from repro.representatives import build_representative
from repro.vsm import PivotedNormalizer

from _bench_utils import THRESHOLDS, emit

DB = "D1"
SAMPLE = 800


def test_ablation_normalization(benchmark, databases, query_log):
    base_engine, __ = databases[DB]
    collection = base_engine.collection
    queries = query_log[:SAMPLE]

    variants = {
        "cosine": SearchEngine(collection),
        "pivoted": SearchEngine(
            collection, normalizer=PivotedNormalizer(slope=0.25)
        ),
        "idf": SearchEngine(collection, idf="smooth"),
    }

    def run_variant(engine):
        rep = build_representative(engine)
        return run_usefulness_experiment(
            engine,
            queries,
            [MethodSpec("subrange", SubrangeEstimator(), rep)],
            thresholds=THRESHOLDS,
        )

    results = benchmark.pedantic(
        lambda: {name: run_variant(e) for name, e in variants.items()},
        rounds=1,
        iterations=1,
    )

    lines = [
        "",
        f"=== ablation: similarity function on {DB} "
        f"({len(queries)} queries) ===",
        f"{'similarity':>10} {'U(0.1)':>7} {'match':>6} {'mismatch':>9} "
        f"{'sum d-N':>8} {'sum d-S':>8}",
    ]
    for name, result in results.items():
        rows = result.metrics["subrange"]
        lines.append(f"{name:>10} {rows[0].useful_queries:>7} "
                     f"{sum(r.match for r in rows):>6} "
                     f"{sum(r.mismatch for r in rows):>9} "
                     f"{sum(r.d_nodoc for r in rows):>8.2f} "
                     f"{sum(r.d_avgsim for r in rows):>8.3f}")
    emit("ablation_normalization", "\n".join(lines))

    for name, result in results.items():
        rows = result.metrics["subrange"]
        useful = sum(r.useful_queries for r in rows)
        matched = sum(r.match for r in rows)
        # The estimator keeps identifying useful databases accurately under
        # every similarity function.
        assert matched >= 0.85 * useful, name
        # And the mean AvgSim error stays small.
        assert sum(r.d_avgsim for r in rows) / len(rows) < 0.1, name
