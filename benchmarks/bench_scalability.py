"""Section 3.2 scalability table — representative size vs collection size.

Reprints the paper's WSJ/FR/DOE rows (reproduced exactly from the published
term counts), adds the synthetic D1/D2/D3 rows, and benchmarks the sizing
computation.
"""

from repro.evaluation import format_sizing_table
from repro.representatives import (
    PAPER_COLLECTION_STATS,
    sizing_for_collection,
)

from _bench_utils import emit


def test_scalability_table(benchmark, databases):
    collections = [engine.collection for engine, __ in databases.values()]
    rows = benchmark(
        lambda: [sizing_for_collection(c) for c in collections]
    )
    emit(
        "scalability",
        "\n".join(
            [
                "",
                "=== Section 3.2 table: paper collections (published stats) ===",
                format_sizing_table(PAPER_COLLECTION_STATS),
                "",
                "=== Section 3.2 table: synthetic databases ===",
                format_sizing_table(rows),
            ]
        ),
    )

    # The paper's published arithmetic must reproduce exactly.
    by_name = {r.name: r for r in PAPER_COLLECTION_STATS}
    assert round(by_name["WSJ"].representative_pages) == 1563
    assert abs(by_name["WSJ"].percent - 3.85) < 0.01
    assert round(by_name["FR"].representative_pages) == 1263
    assert abs(by_name["FR"].percent - 3.79) < 0.01
    assert round(by_name["DOE"].representative_pages) == 1862
    assert abs(by_name["DOE"].percent - 7.40) < 0.01
    # One-byte coding lands in the claimed 1.5-3% band for the paper rows.
    for row in PAPER_COLLECTION_STATS:
        assert 1.4 <= row.quantized_percent <= 3.1
    # Our synthetic rows: quantized is 8/20 of full, by construction.
    for row in rows:
        assert abs(row.quantized_pages / row.representative_pages - 0.4) < 1e-9
