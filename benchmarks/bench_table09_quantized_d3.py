"""Table 9 — one-byte representative on D3.  Benchmarks representative
construction from the index (the engine-side export cost)."""

from repro.evaluation import format_combined_table
from repro.representatives import build_representative

from _bench_utils import print_with_reference

DB = "D3"
TABLE = "table9"


def test_table09_quantized_d3(benchmark, results, databases):
    engine, __ = databases[DB]
    benchmark(build_representative, engine)
    result = results.quantized(DB)
    print_with_reference(TABLE, format_combined_table(result, "subrange"))
    exact = results.exact(DB).metrics["subrange"]
    quantized = result.metrics["subrange"]
    for e_row, q_row in zip(exact, quantized):
        assert abs(e_row.match - q_row.match) <= max(5, 0.03 * e_row.match)
        assert abs(e_row.d_avgsim - q_row.d_avgsim) <= 0.02
