"""Quickstart: estimate a search engine's usefulness without searching it.

Builds two tiny engines from raw text, publishes their compact
representatives, and shows that the subrange estimator — looking only at
the representatives — agrees with the exhaustive ground truth about which
engine is worth querying.

Run:  python examples/quickstart.py
"""

from repro import (
    Collection,
    Query,
    SearchEngine,
    SubrangeEstimator,
    build_representative,
    true_usefulness,
)

DB_SPACE = [
    ("s1", "The rocket engine ignited and the spacecraft rose toward orbit."),
    ("s2", "Astronauts aboard the station photographed the comet's long tail."),
    ("s3", "A new telescope mirror focuses faint light from distant galaxies."),
    ("s4", "Mission control confirmed the orbiter's thruster burn succeeded."),
    ("s5", "The probe's camera returned images of craters on the icy moon."),
]

DB_COOKING = [
    ("c1", "Simmer the tomato sauce slowly and season it with fresh basil."),
    ("c2", "Knead the bread dough until smooth, then let it rise an hour."),
    ("c3", "Roast the vegetables with olive oil, garlic and a pinch of salt."),
    ("c4", "Whisk eggs and sugar until pale before folding in the flour."),
    ("c5", "A sharp knife and a steady hand make slicing onions painless."),
]


def main() -> None:
    engines = [
        SearchEngine(Collection.from_texts("space-news", DB_SPACE)),
        SearchEngine(Collection.from_texts("cooking-tips", DB_COOKING)),
    ]
    # Each engine exports a compact statistical representative; this is all
    # the metasearch side ever sees.
    representatives = {e.name: build_representative(e) for e in engines}

    estimator = SubrangeEstimator()
    threshold = 0.2

    for text in ("telescope galaxies", "bread dough", "olive oil garlic"):
        query = Query.from_text(text)
        print(f"query: {text!r}  (threshold {threshold})")
        for engine in engines:
            rep = representatives[engine.name]
            est = estimator.estimate(query, rep, threshold)
            truth = true_usefulness(engine, query, threshold)
            print(
                f"  {engine.name:12s}  estimated NoDoc={est.nodoc:5.2f} "
                f"AvgSim={est.avgsim:.3f}   true NoDoc={truth.nodoc:.0f} "
                f"AvgSim={truth.avgsim:.3f}"
            )
        print()


if __name__ == "__main__":
    main()
