"""Hierarchical metasearch — the paper's "more than two levels".

Builds a three-level broker tree over twelve newsgroup engines, routes
queries top-down, and shows whole subtrees being pruned by a single
usefulness estimate on their (exactly merged) representative.

Run:  python examples/hierarchical_metasearch.py
"""

from repro.corpus.synth import NewsgroupModel, QueryLogModel
from repro.engine import SearchEngine
from repro.metasearch import BrokerNode

N_ENGINES = 12
FANOUT = 4
THRESHOLD = 0.3


def main() -> None:
    model = NewsgroupModel(seed=31)
    print(f"building {N_ENGINES} engines and a 3-level hierarchy ...")
    leaves = [
        BrokerNode.leaf(SearchEngine(model.generate_group(g)))
        for g in range(N_ENGINES)
    ]
    regions = [
        BrokerNode.inner(f"region{r}", leaves[r * FANOUT: (r + 1) * FANOUT])
        for r in range(N_ENGINES // FANOUT)
    ]
    root = BrokerNode.inner("root", regions)
    print(f"hierarchy: {root} depth={root.depth()}")

    queries = QueryLogModel(model, seed=8).generate(200)
    shown = 0
    for query in queries:
        report = root.search(query, THRESHOLD, limit=3)
        if report.hits and shown < 4:
            shown += 1
            print(f"\nquery {query.terms}")
            print(f"  visited : {report.visited_nodes}")
            print(f"  pruned  : {report.pruned_subtrees}")
            print(f"  invoked : {report.invoked_engines}")
            for hit in report.hits:
                print(f"    {hit.doc_id} sim={hit.similarity:.3f} ({hit.engine})")

    visits = 0
    for query in queries:
        visits += len(root.search(query, THRESHOLD).visited_nodes)
    flat = N_ENGINES * len(queries)
    print(f"\nover {len(queries)} queries: {visits} node estimates vs "
          f"{flat} for a flat broker ({1 - visits / flat:.0%} saved)")


if __name__ == "__main__":
    main()
