"""Scalability of database representatives (Section 3.2).

Prints the paper's WSJ/FR/DOE sizing table from its published statistics,
appends rows for our synthetic D1/D2/D3, and demonstrates that the one-byte
quantization of the representative barely moves the stored statistics.

Run:  python examples/representative_sizing.py
"""

import numpy as np

from repro import SearchEngine, build_representative, quantize_representative
from repro.corpus.synth import build_paper_databases
from repro.evaluation import format_sizing_table
from repro.representatives import PAPER_COLLECTION_STATS, sizing_for_collection


def main() -> None:
    print("== Section 3.2 table: paper collections (published statistics) ==")
    print(format_sizing_table(PAPER_COLLECTION_STATS))

    print("\n== Same accounting for the synthetic databases ==")
    databases = build_paper_databases()
    print(format_sizing_table(sizing_for_collection(c) for c in databases))

    print("\n== Effect of one-byte quantization on the stored statistics ==")
    engine = SearchEngine(databases[0])
    exact = build_representative(engine)
    approx = quantize_representative(exact)
    errors = {"probability": [], "mean": [], "std": [], "max_weight": []}
    for term, stats in exact.items():
        q = approx.get(term)
        errors["probability"].append(abs(stats.probability - q.probability))
        errors["mean"].append(abs(stats.mean - q.mean))
        errors["std"].append(abs(stats.std - q.std))
        errors["max_weight"].append(abs(stats.max_weight - q.max_weight))
    for field, errs in errors.items():
        arr = np.asarray(errs)
        print(
            f"  {field:12s} mean abs error {arr.mean():.2e}   "
            f"max abs error {arr.max():.2e}"
        )


if __name__ == "__main__":
    main()
