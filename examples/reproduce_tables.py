"""Small-scale reproduction of the paper's Tables 1-2 (and 7/10 variants).

Runs the three-method comparison — gGlOSS high-correlation, the previous
method, and the subrange method — on the synthetic D1 with a reduced query
log, then shows the quantized-representative (Table 7) and triplet
(Table 10) conditions.  The full-size runs live in benchmarks/.

Run:  python examples/reproduce_tables.py  [n_queries]
"""

import sys

from repro import (
    GlossHighCorrelationEstimator,
    PreviousMethodEstimator,
    SearchEngine,
    SubrangeEstimator,
    build_representative,
    quantize_representative,
)
from repro.corpus.synth import NewsgroupModel, QueryLogModel, build_paper_databases
from repro.evaluation import (
    MethodSpec,
    format_combined_table,
    format_error_table,
    format_match_table,
    run_usefulness_experiment,
)


def main(n_queries: int = 1200) -> None:
    model = NewsgroupModel()
    d1, __, __ = build_paper_databases(model)
    engine = SearchEngine(d1)
    rep = build_representative(engine)
    queries = QueryLogModel(model).generate(n_queries)

    methods = [
        MethodSpec("gloss-hc", GlossHighCorrelationEstimator(), rep),
        MethodSpec("prev", PreviousMethodEstimator(), rep),
        MethodSpec("subrange", SubrangeEstimator(), rep),
    ]
    result = run_usefulness_experiment(engine, queries, methods)
    print("== Tables 1-2 analogue (full-precision quadruplets) ==")
    print(format_match_table(result))
    print()
    print(format_error_table(result))

    print("\n== Table 7 analogue (one byte per stored number) ==")
    quantized = quantize_representative(rep)
    result_q = run_usefulness_experiment(
        engine,
        queries,
        [MethodSpec("subrange-1byte", SubrangeEstimator(), quantized,
                    label="subrange, 1-byte rep")],
    )
    print(format_combined_table(result_q, "subrange-1byte"))

    print("\n== Table 10 analogue (max weight estimated, triplets) ==")
    result_t = run_usefulness_experiment(
        engine,
        queries,
        [MethodSpec("subrange-triplet",
                    SubrangeEstimator(use_stored_max=False),
                    rep.as_triplets(),
                    label="subrange, estimated mw")],
    )
    print(format_combined_table(result_t, "subrange-triplet"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1200)
