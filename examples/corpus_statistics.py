"""Validating the data substitution: is the synthetic corpus text-like?

The reproduction replaces the paper's (unavailable) newsgroup snapshots
with a synthetic generator; the substitution is only sound if the generator
produces the statistics the estimators actually consume.  This example
measures the synthetic D1 against the three signatures of natural text —
Zipfian term frequencies, Heaps vocabulary growth, and a heavily skewed
document-frequency distribution — and contrasts a uniform-random corpus
that fails all three.

Run:  python examples/corpus_statistics.py
"""

import numpy as np

from repro.corpus import Collection, Document, analyze_collection, heaps_curve
from repro.corpus.synth import NewsgroupModel, build_paper_databases


def report(title, stats) -> None:
    print(f"\n== {title} ==")
    print(f"documents            : {stats.n_documents}")
    print(f"distinct terms       : {stats.n_terms}")
    print(f"tokens               : {stats.n_tokens}")
    print(f"mean / median length : {stats.mean_doc_length:.1f} / "
          f"{stats.median_doc_length:.1f}")
    print(f"Zipf exponent (head) : {stats.zipf_exponent:.2f} "
          f"(R^2 {stats.zipf_r_squared:.3f})")
    print(f"Heaps beta           : {stats.heaps_beta:.2f}")
    print(f"df Gini coefficient  : {stats.df_gini:.2f}")


def main() -> None:
    d1, __, d3 = build_paper_databases(NewsgroupModel())
    report("synthetic D1 (761 newsgroup docs)", analyze_collection(d1))
    report("synthetic D3 (26 merged small groups)", analyze_collection(d3))

    rng = np.random.default_rng(0)
    uniform = Collection.from_documents(
        "uniform",
        [
            Document(f"u{i}", terms=[f"t{j}" for j in rng.integers(0, 500, 120)])
            for i in range(400)
        ],
    )
    report("uniform-random contrast corpus", analyze_collection(uniform))

    print("\n== Heaps growth of synthetic D1 (tokens -> vocabulary) ==")
    for tokens, vocab in heaps_curve(d1, points=8):
        print(f"  {tokens:>8} tokens  ->  {vocab:>6} terms")


if __name__ == "__main__":
    main()
