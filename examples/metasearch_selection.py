"""Metasearch engine selection over a fleet of newsgroup engines.

Scenario from the paper's introduction: a metasearch engine fronts many
local search engines, and blindly broadcasting every query wastes network
and compute.  This example registers 16 synthetic newsgroup engines with a
broker, routes a query log using subrange-based usefulness estimates, and
compares invocation cost and recall against (a) broadcasting and (b) the
exhaustive oracle.

Run:  python examples/metasearch_selection.py
"""

from repro import MetasearchBroker, SubrangeEstimator, ThresholdPolicy
from repro.corpus.synth import NewsgroupModel, QueryLogModel
from repro.engine import SearchEngine
from repro.evaluation import evaluate_selection

N_ENGINES = 16
N_QUERIES = 300
THRESHOLD = 0.25


def main() -> None:
    model = NewsgroupModel(seed=2024)
    broker = MetasearchBroker(
        estimator=SubrangeEstimator(), policy=ThresholdPolicy(min_nodoc=1)
    )
    print(f"building {N_ENGINES} local engines ...")
    for group in range(N_ENGINES):
        broker.register(SearchEngine(model.generate_group(group)))

    queries = QueryLogModel(model, seed=3).generate(N_QUERIES)

    total_selected = 0
    total_true = 0
    sample_shown = 0
    for query in queries[:5]:
        response = broker.search(query, THRESHOLD, limit=5)
        print(f"\nquery {query.terms} -> invoked {response.invoked or 'none'}")
        for hit in response.hits[:3]:
            print(f"    {hit.doc_id} sim={hit.similarity:.3f} from {hit.engine}")
        sample_shown += 1

    quality = evaluate_selection(broker, queries, THRESHOLD)
    broadcast_invocations = N_ENGINES * N_QUERIES
    for query in queries:
        total_selected += len(broker.select(query, THRESHOLD))
        total_true += len(broker.true_selection(query, THRESHOLD))

    print("\n--- selection quality over the query log ---")
    print(f"queries                  : {quality.n_queries}")
    print(f"exact engine-set matches : {quality.exact} ({quality.exact_rate:.1%})")
    print(f"recall of useful engines : {quality.recall:.1%}")
    print(f"precision of invocations : {quality.precision:.1%}")
    print(f"invocations (broadcast)  : {broadcast_invocations}")
    print(f"invocations (selected)   : {total_selected} "
          f"({total_selected / broadcast_invocations:.1%} of broadcast)")
    print(f"invocations (oracle)     : {total_true}")


if __name__ == "__main__":
    main()
