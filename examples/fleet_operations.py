"""Operating a metasearch fleet: incremental representatives, merging,
and document-count-driven allocation.

Three operational scenarios beyond the basic routing demo:

1. An engine streams new documents and keeps its representative current
   with O(1)-per-posting sufficient statistics — no rebuild.
2. Two engines are federated; their representatives merge exactly, the
   operation behind the paper's D2/D3 construction.
3. A user asks for "the best 10 documents" rather than a threshold; the
   broker inverts the fleet's expected NoDoc to a threshold and hands each
   engine an integer retrieval quota.

Run:  python examples/fleet_operations.py
"""

from repro import SearchEngine, build_representative
from repro.corpus.synth import NewsgroupModel, QueryLogModel
from repro.metasearch import allocate_documents, threshold_for_k
from repro.representatives import RepresentativeAccumulator


def weights_of(engine, doc_index):
    """{term: normalized weight} of one indexed document."""
    out = {}
    vocabulary = engine.collection.vocabulary
    for term_id, plist in engine.index.items():
        hits = plist.doc_indices == doc_index
        if hits.any():
            out[vocabulary.term_of(term_id)] = float(plist.weights[hits][0])
    return out


def main() -> None:
    model = NewsgroupModel(seed=77)
    engine_a = SearchEngine(model.generate_group(2))
    engine_b = SearchEngine(model.generate_group(3))

    print("-- 1. streaming maintenance --")
    accumulator = RepresentativeAccumulator.from_index(engine_a)
    print(f"seeded from index: {accumulator}")
    # Stream three "new" documents (borrowed from engine B for the demo).
    for doc_index in range(3):
        accumulator.add_document(weights_of(engine_b, doc_index))
    print(f"after 3 streamed documents: {accumulator}")

    print("\n-- 2. exact representative merging --")
    acc_a = RepresentativeAccumulator.from_index(engine_a)
    acc_b = RepresentativeAccumulator.from_index(engine_b)
    merged = RepresentativeAccumulator.merged("federated", [acc_a, acc_b])
    print(f"A: {acc_a.n_documents} docs / {acc_a.n_terms} terms")
    print(f"B: {acc_b.n_documents} docs / {acc_b.n_terms} terms")
    print(f"merged: {merged.n_documents} docs / {merged.n_terms} terms")
    rep = merged.to_representative()
    sample_term = next(iter(rep.items()))
    print(f"sample merged stats: {sample_term}")

    print("\n-- 3. top-k quota allocation --")
    engines = {
        f"group{g:02d}": SearchEngine(model.generate_group(g))
        for g in range(6)
    }
    representatives = {
        name: build_representative(engine)
        for name, engine in engines.items()
    }
    queries = QueryLogModel(model, seed=9).generate(200)
    query = next(q for q in queries if q.n_terms >= 3)
    k = 10
    threshold = threshold_for_k(query, representatives, k)
    quotas = allocate_documents(query, representatives, k)
    print(f"query {query.terms}, want {k} documents")
    print(f"inverted threshold: {threshold:.4f}")
    for name in sorted(quotas):
        print(f"  {name}: quota {quotas[name]}")
    retrieved = []
    for name, quota in quotas.items():
        if quota > 0:
            retrieved.extend(engines[name].top_k(query, quota))
    retrieved.sort(reverse=True)
    print("retrieved (merged):")
    for hit in retrieved[:k]:
        print(f"  {hit.doc_id}  sim={hit.similarity:.4f}  from {hit.engine}")


if __name__ == "__main__":
    main()
