"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so `pip install -e .`
works on environments whose setuptools predates PEP 660 editable wheels
(and without network access for build isolation).
"""

from setuptools import setup

setup()
